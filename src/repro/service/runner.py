"""Background job execution for the evaluation service.

A :class:`JobRunner` owns a small pool of worker *threads*, each draining
the :class:`~repro.service.queue.JobQueue` and executing one job at a time
as a checkpointable :class:`~repro.leakage.campaign.EvaluationCampaign`.
Threads (not processes) are the right grain here: a campaign already
parallelizes its heavy lifting across a process pool when the job asks for
workers, and the runner thread spends its life inside numpy/multiprocessing
calls that release the GIL.

Execution contract:

* every job runs with a per-job checkpoint file inside the store, chunked
  by default, so progress is durable at chunk granularity;
* the campaign's ``should_stop`` is wired to two events -- per-job
  cancellation and service shutdown.  Both stop the campaign cleanly at the
  next chunk boundary; cancellation marks the job ``cancelled``, shutdown
  returns it to ``queued`` so the next boot resumes it from its checkpoint
  (the same path a SIGKILL takes, just without the lost in-flight chunk);
* on success the serialized report is memoized in the content-addressed
  verdict store, making every future identical submission an O(1) lookup;
* the telemetry hook threads through campaign *and* executor, so the event
  log shows chunk throughput and pool behaviour per job.
"""

from __future__ import annotations

import json
import os
import threading
import time
import traceback
from typing import Dict, Optional

from repro.core.optimizations import (
    FIRST_ORDER_SCHEMES,
    RandomnessScheme,
    SecondOrderScheme,
)
from repro.errors import ReproError, ServiceError
from repro.leakage.campaign import EvaluationCampaign
from repro.leakage.evaluator import LeakageEvaluator
from repro.leakage.model import ProbingModel
from repro.service.queue import JobQueue
from repro.service.store import JobSpec, JobStore
from repro.service.telemetry import Telemetry

# Server-side default chunking now lives on the spec itself; re-exported
# because earlier service versions defined it here.
from repro.spec import DEFAULT_CHUNK_SIZE  # noqa: F401

_SCHEMES = {scheme.value: scheme for scheme in FIRST_ORDER_SCHEMES}
_SCHEMES.update({scheme.value: scheme for scheme in SecondOrderScheme})
_SHORTCUTS = {
    "full": RandomnessScheme.FULL,
    "eq6": RandomnessScheme.DEMEYER_EQ6,
    "eq9": RandomnessScheme.PROPOSED_EQ9,
}

DESIGNS = ("kronecker", "sbox", "sbox2", "sbox-nokronecker")


def resolve_scheme(name: str):
    """Scheme enum for a CLI/API name (shortcuts included)."""
    if name in _SHORTCUTS:
        return _SHORTCUTS[name]
    if name in _SCHEMES:
        return _SCHEMES[name]
    raise ServiceError(
        f"unknown scheme {name!r}; choose from "
        f"{sorted(_SHORTCUTS) + sorted(_SCHEMES)}"
    )


def build_design(design: str, scheme_name: str):
    """Build a named design; returns an object with ``.dut``/``.netlist``."""
    scheme = resolve_scheme(scheme_name)
    if design == "kronecker":
        from repro.core.kronecker import build_kronecker_delta

        order = 2 if isinstance(scheme, SecondOrderScheme) else 1
        return build_kronecker_delta(scheme, order=order)
    if design == "sbox":
        from repro.core.sbox import build_masked_sbox

        if not isinstance(scheme, RandomnessScheme):
            raise ServiceError("the S-box needs a first-order scheme")
        return build_masked_sbox(scheme)
    if design == "sbox2":
        from repro.core.sbox2 import build_masked_sbox_second_order

        if not isinstance(scheme, SecondOrderScheme):
            scheme = SecondOrderScheme.FULL_21
        return build_masked_sbox_second_order(scheme)
    if design == "sbox-nokronecker":
        from repro.core.sbox import build_masked_sbox

        return build_masked_sbox(include_kronecker=False)
    raise ServiceError(
        f"unknown design {design!r}; choose from {list(DESIGNS)}"
    )


def evaluator_for(spec: JobSpec) -> LeakageEvaluator:
    """Construct the evaluator a job spec describes."""
    built = build_design(spec.design, spec.scheme)
    model = (
        ProbingModel.GLITCH_TRANSITION
        if spec.model == "glitch-transition"
        else ProbingModel.GLITCH
    )
    return LeakageEvaluator(
        built.dut, model, seed=spec.seed, engine=spec.engine,
        slice_cones=spec.slice,
    )


def verdict_summary(report_dict: Dict) -> Dict:
    """Compact result summary stored on the job record.

    ``exit_code`` mirrors the CLI contract: 0 clean+complete, 1 leakage,
    3 truncated without a leak (inconclusive).
    """
    truncated = report_dict.get("status", "complete") != "complete"
    passed = bool(report_dict.get("passed"))
    if not passed:
        exit_code = 1
    elif truncated:
        exit_code = 3
    else:
        exit_code = 0
    return {
        "passed": passed,
        "status": report_dict.get("status"),
        "max_mlog10p": report_dict.get("max_mlog10p"),
        "n_probe_classes": report_dict.get("n_probe_classes"),
        "exit_code": exit_code,
    }


class JobRunner:
    """Worker threads executing queued jobs against the store."""

    def __init__(
        self,
        store: JobStore,
        queue: JobQueue,
        telemetry: Telemetry,
        threads: int = 1,
    ):
        if threads < 1:
            raise ServiceError("runner threads must be at least 1")
        self.store = store
        self.queue = queue
        self.telemetry = telemetry
        self.n_threads = threads
        self._threads: list = []
        self._shutdown = threading.Event()
        self._cancels: Dict[str, threading.Event] = {}
        self._cancels_lock = threading.Lock()
        self._busy = 0
        self._busy_lock = threading.Lock()

    # ------------------------------------------------------------- lifecycle

    def start(self) -> None:
        """Spawn the worker threads (idempotent)."""
        if self._threads:
            return
        for index in range(self.n_threads):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-runner-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def shutdown(self, wait: bool = True) -> None:
        """Stop draining the queue and stop running campaigns cleanly.

        Running jobs stop at their next chunk boundary and return to state
        ``queued`` with their checkpoint on disk -- the durable image a
        restarted service recovers from.
        """
        self._shutdown.set()
        self.queue.close()
        if wait:
            for thread in self._threads:
                thread.join(timeout=60)
        self._threads = []

    def recover(self) -> int:
        """Re-enqueue jobs a previous process left ``queued``/``running``."""
        recovered = 0
        for record in self.store.recoverable_jobs():
            job_id = record["job_id"]
            self.store.update_job(job_id, state="queued")
            self.telemetry.emit(
                "job_recovered",
                job_id=job_id,
                had_checkpoint=os.path.exists(
                    self.store.checkpoint_path(job_id)
                ),
            )
            self.queue.put(job_id)
            recovered += 1
        return recovered

    def cancel(self, job_id: str) -> Dict:
        """Cancel a queued or running job; terminal jobs are an error."""
        record = self.store.get_job(job_id)
        if record is None:
            raise ServiceError(f"unknown job {job_id!r}")
        if record["state"] == "running":
            with self._cancels_lock:
                event = self._cancels.get(job_id)
            if event is not None:
                event.set()
            return record
        if record["state"] == "queued":
            record = self.store.update_job(job_id, state="cancelled")
            self.telemetry.emit("job_cancelled", job_id=job_id, while_queued=True)
            return record
        raise ServiceError(
            f"job {job_id!r} is already {record['state']}; cannot cancel"
        )

    @property
    def busy_workers(self) -> int:
        """Threads currently executing a job (for ``/metrics``)."""
        with self._busy_lock:
            return self._busy

    # ------------------------------------------------------------- execution

    def _worker_loop(self) -> None:
        while not self._shutdown.is_set():
            job_id = self.queue.get(timeout=0.2)
            if job_id is None:
                continue
            record = self.store.get_job(job_id)
            if record is None or record["state"] != "queued":
                continue  # cancelled while queued, or stale id
            with self._busy_lock:
                self._busy += 1
            try:
                self._execute(record)
            finally:
                with self._busy_lock:
                    self._busy -= 1

    def _execute(self, record: Dict) -> None:
        job_id = record["job_id"]
        cache_key = record["cache_key"]
        spec = JobSpec.from_dict(record["spec"])
        cancel_event = threading.Event()
        with self._cancels_lock:
            self._cancels[job_id] = cancel_event
        checkpoint = self.store.checkpoint_path(job_id)
        self.store.update_job(
            job_id, state="running", started_at=round(time.time(), 3)
        )
        self.telemetry.emit("job_started", job_id=job_id)
        tele_hook = self.telemetry.campaign_hook(job_id)

        def hook(event: str, payload: Dict) -> None:
            tele_hook(event, payload)
            if event == "chunk_done":
                self.store.update_job(
                    job_id,
                    progress={
                        "blocks_done": payload.get("blocks_done"),
                        "blocks_total": payload.get("blocks_total"),
                        "chunks_done": payload.get("chunks_done"),
                        "elapsed": round(payload.get("elapsed", 0.0), 3),
                    },
                )

        def should_stop() -> bool:
            return cancel_event.is_set() or self._shutdown.is_set()

        try:
            # An identical job may have completed while this one sat in the
            # queue; answer from the verdict cache instead of re-simulating.
            if self.store.has_result(cache_key):
                data = self.store.get_result(cache_key)
                summary = verdict_summary(_json_loads(data))
                self.store.update_job(
                    job_id,
                    state="done",
                    cached=True,
                    finished_at=round(time.time(), 3),
                    result=summary,
                )
                self.telemetry.emit(
                    "cache_hit", job_id=job_id, cache_key=cache_key,
                    late=True,
                )
                self.telemetry.emit("job_completed", job_id=job_id, cached=True)
                return
            evaluator = evaluator_for(spec)
            config = spec.campaign_config(
                checkpoint=checkpoint, default_chunking=True
            )
            campaign = EvaluationCampaign(
                evaluator, config, hook=hook, should_stop=should_stop
            )
            report = campaign.run(resume=True)
            if report.status == "truncated:cancelled":
                if cancel_event.is_set():
                    self.store.update_job(
                        job_id,
                        state="cancelled",
                        finished_at=round(time.time(), 3),
                    )
                    self.telemetry.emit("job_cancelled", job_id=job_id)
                    if os.path.exists(checkpoint):
                        os.unlink(checkpoint)
                else:  # service shutdown: back to the durable queue image
                    self.store.update_job(job_id, state="queued")
                    self.telemetry.emit(
                        "job_interrupted",
                        job_id=job_id,
                        blocks_done=campaign.progress.blocks_done,
                        blocks_total=campaign.progress.blocks_total,
                    )
                return
            report_json = report.to_json(top=None)
            self.store.put_result(cache_key, report_json)
            summary = verdict_summary(report.to_dict(top=0))
            self.store.update_job(
                job_id,
                state="done",
                finished_at=round(time.time(), 3),
                result=summary,
                progress={
                    "blocks_done": campaign.progress.blocks_done,
                    "blocks_total": campaign.progress.blocks_total,
                    "chunks_done": campaign.progress.chunks_done,
                    "resumed_from_block": campaign.progress.resumed_from_block,
                },
            )
            self.telemetry.emit(
                "job_completed",
                job_id=job_id,
                cached=False,
                passed=summary["passed"],
                status=summary["status"],
                resumed_from_block=campaign.progress.resumed_from_block,
            )
            if os.path.exists(checkpoint):
                os.unlink(checkpoint)
        except ReproError as exc:
            self.store.update_job(
                job_id,
                state="failed",
                finished_at=round(time.time(), 3),
                error=str(exc),
            )
            self.telemetry.emit("job_failed", job_id=job_id, error=str(exc))
        except Exception as exc:  # noqa: BLE001 - runner must not die
            self.store.update_job(
                job_id,
                state="failed",
                finished_at=round(time.time(), 3),
                error=f"internal error: {exc!r}",
            )
            self.telemetry.emit(
                "job_failed",
                job_id=job_id,
                error=repr(exc),
                traceback=traceback.format_exc(limit=5),
            )
        finally:
            with self._cancels_lock:
                self._cancels.pop(job_id, None)


def _json_loads(data: Optional[bytes]) -> Dict:
    return json.loads(data.decode("utf-8")) if data else {}
