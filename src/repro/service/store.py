"""Persistent, content-addressed job/result store for the evaluation service.

PROLEAD-style evaluations are exactly the workload users re-run with
identical parameters: the same (netlist, randomness scheme, probing model,
sample budget, seed) tuple is queried again and again while candidate
schemes are compared.  Because the whole evaluation pipeline is
deterministic by construction -- per-block ``SeedSequence`` streams, commuting
histogram accumulation, engine- and worker-invariant results -- the verdict
for such a tuple is a pure function of the tuple.  The store exploits that:

* **Cache key.**  The canonical SHA-256 over the *semantic* job parameters:
  the netlist structure hash from :func:`repro.netlist.compile.
  netlist_content_hash` (not the design/scheme *names* -- two names building
  the same circuit share verdicts), probing model, observation mode, sample
  budget, windows, fixed secret, threshold, campaign mode, pair selection,
  and RNG seed.  Execution details that provably do not change results --
  engine, worker count, chunk size, checkpoint layout -- are deliberately
  excluded, so a verdict computed serially on the bitsliced engine answers a
  query that would have run 16-way parallel on the compiled one.

* **Records.**  One JSON file per job under ``jobs/`` (submission state,
  spec, progress, result summary) and one per verdict under ``results/``
  keyed by cache key, holding the exact serialized report text -- a cache
  hit returns **byte-identical** output to the run that populated it.  All
  writes are atomic (same-directory temp file + ``os.replace``), so a
  SIGKILL mid-write leaves the previous version intact, never a torn file.

* **Crash recovery.**  Job records double as the durable queue image:
  on restart, records still in state ``queued``/``running`` are re-enqueued
  and their campaigns resume from the per-job checkpoint under
  ``checkpoints/``.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ServiceError
from repro.leakage.report import SCHEMA_VERSION
from repro.spec import EvaluationSpec, canonical_key  # noqa: F401

#: The service job spec *is* the canonical evaluation spec; the alias
#: survives for callers that imported it from here before
#: :mod:`repro.spec` existed.
JobSpec = EvaluationSpec

#: Job states; ``queued`` and ``running`` survive a restart as "recover me".
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: States in which a job record is final and its report (if any) immutable.
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})


def _atomic_write(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (temp file + rename)."""
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except OSError as exc:
        raise ServiceError(f"could not write {path!r}: {exc}") from exc
    finally:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)


@dataclass
class StoreStats:
    """Verdict-cache effectiveness counters."""

    hits: int = 0
    misses: int = 0

    def to_dict(self) -> Dict:
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hits / total, 4) if total else None,
        }


class JobStore:
    """Directory-backed job records plus the content-addressed verdict cache.

    Thread-safe: all mutation happens under one re-entrant lock, and every
    record update notifies a condition variable so HTTP long-polls can wait
    for state changes without busy-looping.
    """

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        self.jobs_dir = os.path.join(self.root, "jobs")
        self.results_dir = os.path.join(self.root, "results")
        self.checkpoints_dir = os.path.join(self.root, "checkpoints")
        for path in (self.jobs_dir, self.results_dir, self.checkpoints_dir):
            os.makedirs(path, exist_ok=True)
        self._lock = threading.RLock()
        self.changed = threading.Condition(self._lock)
        self._records: Dict[str, Dict] = {}
        self.stats = StoreStats()
        self._load_records()

    # --------------------------------------------------------------- records

    def _job_path(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, f"{job_id}.json")

    def _result_path(self, cache_key: str) -> str:
        return os.path.join(self.results_dir, f"{cache_key}.json")

    def checkpoint_path(self, job_id: str) -> str:
        """Campaign checkpoint file owned by one job."""
        return os.path.join(self.checkpoints_dir, f"{job_id}.npz")

    def telemetry_path(self) -> str:
        """Default JSON-lines telemetry file inside the store root."""
        return os.path.join(self.root, "telemetry.jsonl")

    def _load_records(self) -> None:
        for name in sorted(os.listdir(self.jobs_dir)):
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.jobs_dir, name)
            try:
                with open(path, "r") as handle:
                    record = json.load(handle)
            except (OSError, ValueError) as exc:
                raise ServiceError(
                    f"corrupt job record {path!r}: {exc}"
                ) from exc
            self._records[record["job_id"]] = record

    def new_job(self, spec: JobSpec, cache_key: str) -> Dict:
        """Create and persist a fresh job record in state ``queued``."""
        with self._lock:
            job_id = f"{len(self._records) + 1:06d}-{cache_key[:12]}"
            while job_id in self._records:  # collision after deletions
                job_id = f"{int(job_id.split('-')[0]) + 1:06d}-{cache_key[:12]}"
            record = {
                "schema_version": SCHEMA_VERSION,
                "job_id": job_id,
                "cache_key": cache_key,
                "spec": spec.to_dict(),
                "state": "queued",
                "cached": False,
                "submitted_at": round(time.time(), 3),
                "started_at": None,
                "finished_at": None,
                "error": None,
                "progress": None,
                "result": None,
            }
            self._persist(record)
            return dict(record)

    def _persist(self, record: Dict) -> None:
        self._records[record["job_id"]] = record
        _atomic_write(
            self._job_path(record["job_id"]),
            (json.dumps(record, indent=2, sort_keys=True) + "\n").encode(),
        )
        self.changed.notify_all()

    def update_job(self, job_id: str, **fields) -> Dict:
        """Merge ``fields`` into a job record, persist, notify waiters."""
        with self._lock:
            record = self._records.get(job_id)
            if record is None:
                raise ServiceError(f"unknown job {job_id!r}")
            state = fields.get("state")
            if state is not None and state not in JOB_STATES:
                raise ServiceError(f"invalid job state {state!r}")
            record = dict(record)
            record.update(fields)
            self._persist(record)
            return dict(record)

    def get_job(self, job_id: str) -> Optional[Dict]:
        with self._lock:
            record = self._records.get(job_id)
            return dict(record) if record is not None else None

    def list_jobs(self) -> List[Dict]:
        """All job records, oldest first."""
        with self._lock:
            return [
                dict(r)
                for r in sorted(
                    self._records.values(), key=lambda r: r["job_id"]
                )
            ]

    def wait_for_terminal(
        self, job_id: str, timeout: float
    ) -> Optional[Dict]:
        """Long-poll: block until the job reaches a terminal state.

        Returns the latest record (terminal or not) after at most
        ``timeout`` seconds; ``None`` for unknown jobs.
        """
        deadline = time.monotonic() + timeout
        with self._lock:
            while True:
                record = self._records.get(job_id)
                if record is None:
                    return None
                if record["state"] in TERMINAL_STATES:
                    return dict(record)
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return dict(record)
                self.changed.wait(remaining)

    def recoverable_jobs(self) -> List[Dict]:
        """Jobs interrupted by a crash/shutdown, oldest first."""
        with self._lock:
            return [
                dict(r)
                for r in sorted(
                    self._records.values(), key=lambda r: r["job_id"]
                )
                if r["state"] in ("queued", "running")
            ]

    # --------------------------------------------------------- verdict cache

    def get_result(self, cache_key: str) -> Optional[bytes]:
        """The stored report bytes for ``cache_key``, counting hit/miss."""
        path = self._result_path(cache_key)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            with self._lock:
                self.stats.misses += 1
            return None
        with self._lock:
            self.stats.hits += 1
        return data

    def has_result(self, cache_key: str) -> bool:
        """Existence probe that does not touch the hit/miss stats."""
        return os.path.exists(self._result_path(cache_key))

    def read_result(self, cache_key: str) -> Optional[bytes]:
        """Read stored report bytes without counting a hit or miss.

        Used when *serving* an already-answered job's report; only lookups
        that decide whether a simulation can be skipped count as hits.
        """
        try:
            with open(self._result_path(cache_key), "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            return None

    def put_result(self, cache_key: str, report_json: str) -> None:
        """Memoize the exact serialized report for ``cache_key``.

        First writer wins: a concurrent duplicate computation must not
        replace the bytes an earlier hit may already have returned.
        """
        path = self._result_path(cache_key)
        with self._lock:
            if os.path.exists(path):
                return
            _atomic_write(path, report_json.encode("utf-8"))

    # ----------------------------------------------------------------- stats

    def counts_by_state(self) -> Dict[str, int]:
        with self._lock:
            counts = {state: 0 for state in JOB_STATES}
            for record in self._records.values():
                counts[record["state"]] += 1
            return counts
