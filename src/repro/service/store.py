"""Persistent, content-addressed job/result store for the evaluation service.

PROLEAD-style evaluations are exactly the workload users re-run with
identical parameters: the same (netlist, randomness scheme, probing model,
sample budget, seed) tuple is queried again and again while candidate
schemes are compared.  Because the whole evaluation pipeline is
deterministic by construction -- per-block ``SeedSequence`` streams, commuting
histogram accumulation, engine- and worker-invariant results -- the verdict
for such a tuple is a pure function of the tuple.  The store exploits that:

* **Cache key.**  The canonical SHA-256 over the *semantic* job parameters:
  the netlist structure hash from :func:`repro.netlist.compile.
  netlist_content_hash` (not the design/scheme *names* -- two names building
  the same circuit share verdicts), probing model, observation mode, sample
  budget, windows, fixed secret, threshold, campaign mode, pair selection,
  and RNG seed.  ``mode="exact"`` jobs extend the key with an ``"exact"``
  parameter block (the enumeration budget decides which probes get
  verdicts), so exact and sampled verdicts for the same netlist never
  collide.  Execution details that provably do not change results --
  engine, worker count, chunk size, checkpoint layout, exact shard size --
  are deliberately excluded, so a verdict computed serially on the
  bitsliced engine answers a query that would have run 16-way parallel on
  the compiled one, and a sharded exact sweep answers a serial one.

* **Records.**  One JSON file per job under ``jobs/`` (submission state,
  spec, progress, result summary) and one per verdict under ``results/``
  keyed by cache key, holding the exact serialized report text -- a cache
  hit returns **byte-identical** output to the run that populated it.  All
  writes are atomic (same-directory temp file + ``os.replace``), so a
  SIGKILL mid-write leaves the previous version intact, never a torn file.

* **Crash recovery.**  Job records double as the durable queue image:
  on restart, records still in state ``queued``/``running`` are re-enqueued
  and their campaigns resume from the per-job checkpoint under
  ``checkpoints/``.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.chaos import DEFAULT_RETRY, FaultPlane, RetryPolicy, retry_io
from repro.errors import ServiceError
from repro.leakage.report import SCHEMA_VERSION
from repro.spec import EvaluationSpec, canonical_key  # noqa: F401

#: The service job spec *is* the canonical evaluation spec; the alias
#: survives for callers that imported it from here before
#: :mod:`repro.spec` existed.
JobSpec = EvaluationSpec

#: Job states; ``queued`` and ``running`` survive a restart as "recover
#: me".  ``dead_letter`` holds poison jobs: interrupted/stalled too many
#: times, parked for a human instead of being restarted forever.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled", "dead_letter")

#: States in which a job record is final and its report (if any) immutable.
TERMINAL_STATES = frozenset({"done", "failed", "cancelled", "dead_letter"})


def _atomic_write_raw(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically; raises bare :class:`OSError`
    so callers can retry transient failures before giving up."""
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    finally:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)


def _atomic_write(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (temp file + rename)."""
    try:
        _atomic_write_raw(path, data)
    except OSError as exc:
        raise ServiceError(f"could not write {path!r}: {exc}") from exc


@dataclass
class StoreStats:
    """Verdict-cache effectiveness counters."""

    hits: int = 0
    misses: int = 0
    #: records that failed verification on read and were quarantined;
    #: every one of these was served as a miss, never as a report.
    corruptions: int = 0

    def to_dict(self) -> Dict:
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hits / total, 4) if total else None,
            "corruptions": self.corruptions,
        }


class JobStore:
    """Directory-backed job records plus the content-addressed verdict cache.

    Thread-safe: all mutation happens under one re-entrant lock, and every
    record update notifies a condition variable so HTTP long-polls can wait
    for state changes without busy-looping.
    """

    def __init__(
        self,
        root: str,
        hook: Optional[Callable[[str, Dict], None]] = None,
        fault_plane: Optional[FaultPlane] = None,
        retry: Optional[RetryPolicy] = None,
    ):
        self.root = os.path.abspath(root)
        self.jobs_dir = os.path.join(self.root, "jobs")
        self.results_dir = os.path.join(self.root, "results")
        self.checkpoints_dir = os.path.join(self.root, "checkpoints")
        for path in (self.jobs_dir, self.results_dir, self.checkpoints_dir):
            os.makedirs(path, exist_ok=True)
        #: optional ``hook(event, payload)`` telemetry callback (receives
        #: "store_corruption" and "io_retry").
        self.hook = hook
        #: chaos fault plane for the "store.write"/"store.read_result"
        #: sites; ``None`` (production) costs nothing.
        self.fault_plane = fault_plane
        #: transient-IO retry policy for all store writes.
        self.retry = retry if retry is not None else DEFAULT_RETRY
        self._lock = threading.RLock()
        self.changed = threading.Condition(self._lock)
        self._records: Dict[str, Dict] = {}
        self.stats = StoreStats()
        self._load_records()

    def _write(self, path: str, data: bytes) -> None:
        """Atomic write with bounded retry and chaos injection."""

        def attempt() -> None:
            payload = data
            if self.fault_plane is not None:
                payload = self.fault_plane.filter_write("store.write", payload)
            _atomic_write_raw(path, payload)

        try:
            retry_io(attempt, self.retry, site="store.write", hook=self.hook)
        except OSError as exc:
            raise ServiceError(f"could not write {path!r}: {exc}") from exc

    # --------------------------------------------------------------- records

    def _job_path(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, f"{job_id}.json")

    def _result_path(self, cache_key: str) -> str:
        return os.path.join(self.results_dir, f"{cache_key}.json")

    def checkpoint_path(self, job_id: str) -> str:
        """Campaign checkpoint file owned by one job."""
        return os.path.join(self.checkpoints_dir, f"{job_id}.npz")

    def telemetry_path(self) -> str:
        """Default JSON-lines telemetry file inside the store root."""
        return os.path.join(self.root, "telemetry.jsonl")

    def _load_records(self) -> None:
        """Load persisted job records, quarantining any that fail to parse.

        A single rotted record must not brick the whole service on
        restart: it is moved to ``<record>.corrupt`` (kept for
        post-mortems), counted and reported as ``store_corruption``, and
        the remaining records load normally.
        """
        for name in sorted(os.listdir(self.jobs_dir)):
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.jobs_dir, name)
            try:
                with open(path, "r") as handle:
                    record = json.load(handle)
                if not isinstance(record, dict) or "job_id" not in record:
                    raise ValueError("job record is not a job object")
            except (OSError, ValueError) as exc:
                self._quarantine(path, f"corrupt job record: {exc}")
                continue
            self._records[record["job_id"]] = record

    def _quarantine(self, path: str, reason: str) -> None:
        """Move a failed-verification file aside and report it."""
        quarantine: Optional[str] = path + ".corrupt"
        try:
            os.replace(path, quarantine)
        except OSError:  # pragma: no cover - best-effort
            quarantine = None
        with self._lock:
            self.stats.corruptions += 1
        if self.hook is not None:
            self.hook(
                "store_corruption",
                {"path": path, "quarantine": quarantine, "reason": reason},
            )

    def new_job(self, spec: JobSpec, cache_key: str) -> Dict:
        """Create and persist a fresh job record in state ``queued``."""
        with self._lock:
            job_id = f"{len(self._records) + 1:06d}-{cache_key[:12]}"
            while job_id in self._records:  # collision after deletions
                job_id = f"{int(job_id.split('-')[0]) + 1:06d}-{cache_key[:12]}"
            record = {
                "schema_version": SCHEMA_VERSION,
                "job_id": job_id,
                "cache_key": cache_key,
                "spec": spec.to_dict(),
                "state": "queued",
                "cached": False,
                "submitted_at": round(time.time(), 3),
                "started_at": None,
                "finished_at": None,
                "error": None,
                "progress": None,
                "result": None,
                "restarts": 0,
            }
            self._persist(record)
            return dict(record)

    def _persist(self, record: Dict) -> None:
        self._records[record["job_id"]] = record
        self._write(
            self._job_path(record["job_id"]),
            (json.dumps(record, indent=2, sort_keys=True) + "\n").encode(),
        )
        self.changed.notify_all()

    def update_job(self, job_id: str, **fields) -> Dict:
        """Merge ``fields`` into a job record, persist, notify waiters."""
        with self._lock:
            record = self._records.get(job_id)
            if record is None:
                raise ServiceError(f"unknown job {job_id!r}")
            state = fields.get("state")
            if state is not None and state not in JOB_STATES:
                raise ServiceError(f"invalid job state {state!r}")
            record = dict(record)
            record.update(fields)
            self._persist(record)
            return dict(record)

    def get_job(self, job_id: str) -> Optional[Dict]:
        with self._lock:
            record = self._records.get(job_id)
            return dict(record) if record is not None else None

    def list_jobs(self) -> List[Dict]:
        """All job records, oldest first."""
        with self._lock:
            return [
                dict(r)
                for r in sorted(
                    self._records.values(), key=lambda r: r["job_id"]
                )
            ]

    def wait_for_terminal(
        self, job_id: str, timeout: float
    ) -> Optional[Dict]:
        """Long-poll: block until the job reaches a terminal state.

        Returns the latest record (terminal or not) after at most
        ``timeout`` seconds; ``None`` for unknown jobs.
        """
        deadline = time.monotonic() + timeout
        with self._lock:
            while True:
                record = self._records.get(job_id)
                if record is None:
                    return None
                if record["state"] in TERMINAL_STATES:
                    return dict(record)
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return dict(record)
                self.changed.wait(remaining)

    def recoverable_jobs(self) -> List[Dict]:
        """Jobs interrupted by a crash/shutdown, oldest first."""
        with self._lock:
            return [
                dict(r)
                for r in sorted(
                    self._records.values(), key=lambda r: r["job_id"]
                )
                if r["state"] in ("queued", "running")
            ]

    # --------------------------------------------------------- verdict cache

    def _crc_path(self, cache_key: str) -> str:
        return self._result_path(cache_key) + ".crc32"

    def _read_verified(self, cache_key: str) -> Optional[bytes]:
        """Read and *verify* a cached verdict; corrupt records self-heal.

        Verification: CRC32 against the ``.crc32`` sidecar (absent sidecar
        tolerated -- pre-sidecar stores stay readable), JSON
        well-formedness, and ``schema_version`` no newer than this code
        understands.  Any failure quarantines the record (clearing the
        path so the recomputed verdict can repopulate it under
        first-writer-wins) and returns ``None`` -- the caller sees a cache
        miss, never a wrong or unparseable report.
        """
        path = self._result_path(cache_key)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            return None
        except OSError as exc:
            self._quarantine(path, f"unreadable verdict record: {exc}")
            return None
        if self.fault_plane is not None:
            try:
                data = self.fault_plane.filter_read("store.read_result", data)
            except OSError as exc:
                self._quarantine(path, f"injected read fault: {exc}")
                return None
        reason = self._verify_verdict(cache_key, data)
        if reason is not None:
            self._quarantine(path, reason)
            try:
                os.remove(self._crc_path(cache_key))
            except OSError:
                pass
            return None
        return data

    def _verify_verdict(self, cache_key: str, data: bytes) -> Optional[str]:
        """Why ``data`` is not a servable verdict, or ``None`` if it is."""
        try:
            with open(self._crc_path(cache_key), "r") as handle:
                expected = int(handle.read().strip(), 16)
        except FileNotFoundError:
            expected = None
        except (OSError, ValueError):
            return "unreadable checksum sidecar"
        if expected is not None and zlib.crc32(data) & 0xFFFFFFFF != expected:
            return "checksum mismatch"
        try:
            record = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return "invalid JSON"
        if not isinstance(record, dict):
            return "verdict record is not an object"
        version = record.get("schema_version")
        if version is not None and (
            not isinstance(version, int) or version > SCHEMA_VERSION
        ):
            return (
                f"schema_version {version!r} is newer than the supported "
                f"{SCHEMA_VERSION}"
            )
        return None

    def get_result(self, cache_key: str) -> Optional[bytes]:
        """The verified report bytes for ``cache_key``, counting hit/miss.

        A record failing verification counts as a miss (the corruption
        itself is counted separately in :attr:`StoreStats.corruptions`).
        """
        data = self._read_verified(cache_key)
        with self._lock:
            if data is None:
                self.stats.misses += 1
            else:
                self.stats.hits += 1
        return data

    def has_result(self, cache_key: str) -> bool:
        """Existence probe that does not touch the hit/miss stats.

        Existence is necessary but not sufficient: serving paths must
        still go through :meth:`get_result`/:meth:`read_result`, which
        verify.
        """
        return os.path.exists(self._result_path(cache_key))

    def read_result(self, cache_key: str) -> Optional[bytes]:
        """Verified report bytes without counting a hit or miss.

        Used when *serving* an already-answered job's report; only lookups
        that decide whether a simulation can be skipped count as hits.
        """
        return self._read_verified(cache_key)

    def put_result(self, cache_key: str, report_json: str) -> None:
        """Memoize the exact serialized report for ``cache_key``.

        First writer wins: a concurrent duplicate computation must not
        replace the bytes an earlier hit may already have returned.  The
        CRC32 sidecar lands first so a record, once visible, is always
        verifiable.
        """
        path = self._result_path(cache_key)
        data = report_json.encode("utf-8")
        with self._lock:
            if os.path.exists(path):
                return
            self._write(
                self._crc_path(cache_key),
                f"{zlib.crc32(data) & 0xFFFFFFFF:08x}\n".encode(),
            )
            self._write(path, data)

    # ----------------------------------------------------------------- stats

    def counts_by_state(self) -> Dict[str, int]:
        with self._lock:
            counts = {state: 0 for state in JOB_STATES}
            for record in self._records.values():
                counts[record["state"]] += 1
            return counts
