"""Command-line interface: ``python -m repro.cli <command> ...``.

Commands mirror the paper's workflow:

* ``evaluate`` -- PROLEAD-style fixed-vs-random evaluation of a design
  (Kronecker delta or full S-box) under a probing model.
* ``campaign`` -- the same evaluation as a chunked, checkpointable campaign
  (resume after interruption, time budgets, early stop, ``--adaptive``
  per-probe scheduling), plus the fault-injection self-check of the
  evaluator itself.
* ``exact``    -- exact (SILVER-style) sweep of the Kronecker delta.
* ``certify``  -- compositional (S)NI/PINI certificate of a design's
  gadget decomposition, with exact-enumeration fallback; emits a
  whole-circuit certificate or concrete counterexample probes.
* ``sni``      -- (S)NI check of the DOM-AND gadget.
* ``report``   -- architecture/area report of a design.
* ``verilog``  -- export a design as structural Verilog.
* ``encrypt``  -- masked AES-128 encryption of a block (value level).
* ``serve``    -- long-lived evaluation service (HTTP JSON API, job queue,
  content-addressed verdict cache, structured telemetry; ``--fleet``
  makes it a distributed-campaign coordinator).
* ``submit``   -- submit a job to a running service and await its verdict.
* ``worker``   -- fleet worker daemon: pull leased work from a coordinator
  over HTTP, execute it locally, stream results back.
* ``chaos-torture`` -- robustness self-check: run the campaign under
  deterministic injected infrastructure faults (torn checkpoints, IO
  errors, hung workers) and assert every run ends byte-identical to the
  fault-free golden report or fails with a typed error.

Exit codes: 0 -- clean and complete; 1 -- leakage detected; 2 -- error or
infeasible analysis; 3 -- truncated before completion without a leak
(inconclusive).
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
from typing import Optional, Sequence

from repro import engines as engine_registry
from repro.aes.cipher import aes128_encrypt_block
from repro.core.aes_masked import MaskedAes128
from repro.errors import ReproError, ServiceError
from repro.leakage.campaign import EvaluationCampaign
from repro.leakage.evaluator import LeakageEvaluator
from repro.leakage.faults import run_self_check
from repro.leakage.exact import ExactAnalyzer
from repro.leakage.model import ProbingModel
from repro.leakage.sni import SniChecker, dom_and_gadget
from repro.netlist.stats import netlist_stats
from repro.netlist.verilog import to_verilog
from repro.service.runner import (
    DESIGNS,
    build_design,
    evaluator_for,
    resolve_scheme,
)
from repro.spec import API_VERSION, EvaluationSpec


def _scheme(name: str):
    try:
        return resolve_scheme(name)
    except ServiceError as exc:
        raise SystemExit(str(exc))


_DESIGNS = list(DESIGNS)


def _build(design: str, scheme_name: str):
    try:
        built = build_design(design, scheme_name)
    except ServiceError as exc:
        raise SystemExit(str(exc))
    return built.dut, built.netlist


def cmd_evaluate(args) -> int:
    """Run a fixed-vs-random evaluation; exit 1 on leakage."""
    dut, _ = _build(args.design, args.scheme)
    model = (
        ProbingModel.GLITCH_TRANSITION
        if args.transitions
        else ProbingModel.GLITCH
    )
    evaluator = LeakageEvaluator(dut, model, seed=args.seed, engine=args.engine)
    if args.pairs:
        report = evaluator.evaluate_pairs(
            fixed_secret=args.fixed,
            n_simulations=args.simulations,
            max_pairs=args.max_pairs,
        )
    else:
        report = evaluator.evaluate(
            fixed_secret=args.fixed,
            n_simulations=args.simulations,
            n_windows=args.windows,
        )
    if args.json:
        print(report.to_json(top=args.top))
    else:
        print(report.format_summary(top=args.top))
    return 0 if report.passed else 1


def cmd_campaign(args) -> int:
    """Run a chunked, checkpointable campaign (or the evaluator self-check).

    Exit codes: 0 clean+complete, 1 leakage, 2 error (or self-check
    coverage failure -- the evaluator, not the design, is broken), 3
    truncated without a leak (inconclusive).
    """
    if args.self_check:
        matrix = run_self_check(
            n_simulations=args.simulations,
            seed=args.seed,
            chunk_size=args.chunk_size,
            workers=args.workers,
            engine=args.engine,
        )
        if args.json:
            print(json.dumps(matrix.to_dict(), indent=2))
        else:
            print(matrix.format_table())
        return 0 if matrix.coverage_complete else 2

    spec = EvaluationSpec.from_args(args)
    if spec.mode == "exact":
        return _run_exact_spec(spec, args)
    evaluator = evaluator_for(spec)
    config = spec.campaign_config(
        checkpoint=args.checkpoint,
        time_budget=args.time_budget,
        early_stop=args.early_stop,
        stall_timeout=args.stall_timeout,
    )
    fault_plane = None
    if args.chaos_seed is not None:
        from repro.chaos import ChaosPolicy

        fault_plane = ChaosPolicy(
            seed=args.chaos_seed, p=args.chaos_p
        ).fault_plane()
    campaign = EvaluationCampaign(evaluator, config, fault_plane=fault_plane)
    report = campaign.run(resume=args.resume)
    if args.json:
        print(report.to_json(top=args.top))
    else:
        print(report.format_summary(top=args.top))
        progress = campaign.progress
        print(
            f"  blocks: {progress.blocks_done}/{progress.blocks_total} "
            f"in {progress.chunks_done} chunk(s), resumed from block "
            f"{progress.resumed_from_block}, {progress.retries} retry(ies)"
        )
    if not report.passed:
        return 1
    if report.truncated:
        return 3
    return 0


def _run_exact_spec(spec: EvaluationSpec, args) -> int:
    """Run a ``mode="exact"`` spec locally (the ``campaign --exact`` path).

    Uses the sharded enumeration engine, so ``--workers``, ``--checkpoint``
    and ``--resume`` behave exactly as in sampled campaigns; results are
    bit-identical for any worker count or shard size.
    """
    from repro.leakage.certify import run_exact_analysis

    dut, _ = _build(spec.design, spec.scheme)
    model = (
        ProbingModel.GLITCH_TRANSITION
        if spec.model == "glitch-transition"
        else ProbingModel.GLITCH
    )
    report = run_exact_analysis(
        dut,
        model,
        max_enum_bits=spec.max_enum_bits,
        shard_lane_bits=spec.shard_lane_bits,
        workers=spec.workers,
        fixed_secret=spec.fixed_secret,
        checkpoint=getattr(args, "checkpoint", None),
        resume=getattr(args, "resume", False),
        engine=spec.engine,
    )
    if args.json:
        print(report.to_json(top=args.top))
    else:
        print(report.format_summary(top=args.top))
    if not report.passed:
        return 1
    if not report.conclusive:
        # no leak found, but not every probe was examined (early stop or
        # budget-skipped classes): inconclusive, never a silent pass.
        return 3
    return 0


def cmd_exact(args) -> int:
    """Run the exact Kronecker sweep; exit 1 on leakage."""
    dut, _ = _build("kronecker", args.scheme)
    analyzer = ExactAnalyzer(
        dut, max_enum_bits=args.max_bits, engine=args.engine
    )
    report = analyzer.analyze()
    print(report.format_summary(top=args.top))
    return 0 if report.passed else 1


_CERTIFY_FIXTURES = ("dom-and", "dom-and-pair", "dom-and-pair-shared")


def cmd_certify(args) -> int:
    """Compositional certificate of a design; exit 1 on counterexample."""
    from repro.leakage.certify import (
        CompositionalChecker,
        dom_and_design,
        dom_and_pair_design,
    )

    if args.gadget is not None:
        dut = {
            "dom-and": dom_and_design,
            "dom-and-pair": lambda: dom_and_pair_design(shared_mask=False),
            "dom-and-pair-shared": lambda: dom_and_pair_design(
                shared_mask=True
            ),
        }[args.gadget]()
    else:
        dut, _ = _build(args.design, args.scheme)
    checker = CompositionalChecker(
        dut,
        model=args.model,
        order=args.order,
        max_gadget_bits=args.max_gadget_bits,
        exact_fallback=args.exact_fallback,
        max_enum_bits=args.max_enum_bits,
        engine=args.engine,
    )
    report = checker.check()
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.format_summary())
    return 0 if report.certified else 1


def cmd_sni(args) -> int:
    """Check (S)NI of the DOM-AND gadget; exit 1 if SNI fails."""
    gadget = dom_and_gadget()
    result = SniChecker(gadget, robust=args.robust).check(order=args.order)
    print(result.summary())
    for violation in (result.ni_violations + result.sni_violations)[:10]:
        print(f"  {violation.probe_names}: needs {violation.required_shares}")
    return 0 if result.is_sni else 1


def cmd_report(args) -> int:
    """Print the netlist structure/area report."""
    _, netlist = _build(args.design, args.scheme)
    print(netlist_stats(netlist).format_table())
    return 0


def cmd_verilog(args) -> int:
    """Export a design as structural Verilog."""
    _, netlist = _build(args.design, args.scheme)
    text = to_verilog(netlist)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output} ({len(text)} bytes)")
    else:
        print(text)
    return 0


def cmd_serve(args) -> int:
    """Run the evaluation service until interrupted."""
    from repro.service import EvaluationService

    service = EvaluationService(
        state_dir=args.state_dir,
        host=args.host,
        port=args.port,
        runner_threads=args.runner_threads,
        queue_limit=args.queue_limit,
        telemetry_path=args.telemetry,
        stall_timeout=args.stall_timeout,
        max_restarts=args.max_restarts,
        fleet=args.fleet,
        local_workers=args.local_workers,
        lease_seconds=args.lease_seconds,
        tenant_quota=args.tenant_quota,
    )
    print(f"evaluation service listening on {service.address}")
    if service.fleet is not None:
        print(
            f"  fleet coordinator: on ({service.local_workers} embedded "
            f"local workers, {service.fleet.lease_seconds:g}s leases)"
        )
    print(f"  state dir: {service.store.root}")
    print(f"  telemetry: {service.telemetry.path}")
    sys.stdout.flush()
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        print("shutting down (running jobs return to the queue)...")
        service.stop()
    return 0


def _http_round_trip(url, data=None, timeout=30.0, retry=None):
    """One service HTTP round-trip; returns ``(status, body_bytes)``.

    Connection-level failures (refused, reset, DNS -- a coordinator
    restarting under the client) retry with :func:`repro.chaos.retry_io`
    exponential backoff before surfacing as :class:`ServiceError`.  HTTP
    *responses* of any status are answers, not transport failures, and
    return immediately -- ``HTTPError`` subclasses ``URLError``/``OSError``
    and must be caught before the retry path ever sees it.
    """
    import urllib.error
    import urllib.request

    from repro.chaos import DEFAULT_RETRY, retry_io

    def attempt():
        request = urllib.request.Request(
            url,
            data=data,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as resp:
                return resp.status, resp.read()
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read()

    try:
        return retry_io(
            attempt,
            retry if retry is not None else DEFAULT_RETRY,
            site="submit.http",
            retry_on=(urllib.error.URLError, TimeoutError),
        )
    except urllib.error.URLError as exc:
        raise ServiceError(
            f"cannot reach service at {url}: {exc.reason}"
        ) from exc
    except TimeoutError as exc:
        raise ServiceError(f"service at {url} timed out") from exc


def cmd_submit(args) -> int:
    """Submit a job to a running service; exit codes mirror ``campaign``."""
    spec = EvaluationSpec.from_args(args)
    base = f"{args.url.rstrip('/')}/{API_VERSION}"

    def _request(url, data=None):
        return _http_round_trip(url, data=data, timeout=args.timeout + 30)

    status, body = _request(
        f"{base}/jobs", json.dumps(spec.to_dict()).encode()
    )
    if status not in (200, 201):
        print(f"error: submission failed ({status}): {body.decode()}",
              file=sys.stderr)
        return 2
    record = json.loads(body)
    job_id = record["job_id"]
    print(
        f"job {job_id}: {record['state']}"
        + (" (verdict cache hit)" if record.get("cached") else "")
        + (" (deduplicated against in-flight job)"
           if record.get("deduplicated") else "")
    )
    import time as _time

    deadline = _time.monotonic() + args.timeout
    # Poll while the job is live; any terminal state (done, failed,
    # cancelled, dead_letter, ...) ends the loop.
    while record["state"] in ("queued", "running"):
        remaining = deadline - _time.monotonic()
        if remaining <= 0:
            print(
                f"error: job {job_id} still {record['state']} after "
                f"{args.timeout:g}s; it keeps running server-side",
                file=sys.stderr,
            )
            return 2
        status, body = _request(
            f"{base}/jobs/{job_id}?wait={min(remaining, 60):g}"
        )
        if status != 200:
            print(f"error: poll failed ({status}): {body.decode()}",
                  file=sys.stderr)
            return 2
        record = json.loads(body)
        progress = record.get("progress")
        if progress and record["state"] == "running":
            print(
                f"  running: {progress['blocks_done']}/"
                f"{progress['blocks_total']} blocks"
            )
    if record["state"] != "done":
        print(f"error: job {record['state']}: {record.get('error')}",
              file=sys.stderr)
        return 2
    status, body = _request(f"{base}/jobs/{job_id}/report")
    if status != 200:
        print(f"error: report fetch failed ({status})", file=sys.stderr)
        return 2
    if args.json:
        sys.stdout.write(body.decode("utf-8"))
    else:
        report = json.loads(body)
        verdict = "PASS" if report["passed"] else "FAIL (leakage)"
        if report["status"] != "complete" and report["passed"]:
            verdict = "INCONCLUSIVE (truncated)"
        print(f"  design:  {report['design']}")
        print(f"  status:  {report['status']}")
        print(f"  max -log10(p): {report['max_mlog10p']:.2f}")
        adaptive = report.get("adaptive")
        if adaptive:
            print(
                f"  adaptive: {adaptive['decided_leaky']} leaky / "
                f"{adaptive['decided_null']} null / "
                f"{adaptive['undecided']} undecided "
                f"({adaptive['probe_sample_savings']}x probe-sample savings)"
            )
        print(f"  verdict: {verdict}")
    return record["result"]["exit_code"]


def cmd_worker(args) -> int:
    """Run a fleet worker against a coordinator until interrupted."""
    from repro.service.worker import FleetWorker, HttpTransport

    worker = FleetWorker(
        HttpTransport(args.coordinator),
        worker_id=args.worker_id,
        poll_interval=args.poll_interval,
    )
    print(
        f"fleet worker {worker.worker_id} polling {args.coordinator} "
        f"every {args.poll_interval:g}s"
    )
    sys.stdout.flush()
    worker.run_forever()
    print(
        f"worker {worker.worker_id} stopping "
        f"({worker.items_done} items done, {worker.items_failed} failed)"
    )
    return 0


def cmd_chaos_torture(args) -> int:
    """Torture the campaign under deterministic chaos; exit 1 on violation.

    Every chaos seed runs the campaign interrupted-then-resumed under
    injected infrastructure faults.  Each run must end byte-identical to
    the fault-free golden report or fail with a typed error; anything
    else is a robustness-contract violation and the command exits 1.
    """
    import tempfile

    from repro.chaos import CHAOS_SITES, run_torture

    spec = EvaluationSpec.from_args(args)
    sites = (
        tuple(s.strip() for s in args.sites.split(",") if s.strip())
        if args.sites
        else CHAOS_SITES
    )
    seeds = list(range(args.seed_base, args.seed_base + args.seeds))

    def make_evaluator():
        return evaluator_for(spec)

    def make_config(checkpoint=None):
        return spec.campaign_config(
            checkpoint=checkpoint,
            default_chunking=True,
            stall_timeout=args.stall_timeout,
        )

    workdir = args.workdir or tempfile.mkdtemp(prefix="chaos-torture-")
    os.makedirs(workdir, exist_ok=True)
    report = run_torture(
        make_evaluator,
        make_config,
        seeds,
        workdir,
        p=args.chaos_p,
        hang_seconds=args.hang_seconds,
        max_faults=args.max_faults,
        sites=sites,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.format_summary())
    return 0 if report.ok else 1


def cmd_encrypt(args) -> int:
    """Encrypt one block with the value-level masked AES-128."""
    key = bytes.fromhex(args.key)
    plaintext = bytes.fromhex(args.plaintext)
    masked = MaskedAes128(key, random.Random(args.seed))
    ciphertext = masked.encrypt_block(plaintext)
    print(f"ciphertext: {ciphertext.hex()}")
    reference = aes128_encrypt_block(plaintext, key)
    if ciphertext != reference:  # pragma: no cover - correctness guard
        print("MISMATCH against reference AES!", file=sys.stderr)
        return 1
    return 0


def _add_spec_arguments(p: argparse.ArgumentParser) -> None:
    """Evaluation-spec flags shared by ``campaign`` and ``submit``.

    One flag set, one mapping (:meth:`EvaluationSpec.from_args`): a
    parameter added here reaches the local campaign and the remote
    submission path at once.
    """
    p.add_argument("--design", default="kronecker", choices=_DESIGNS)
    p.add_argument("--scheme", default="full")
    p.add_argument("--fixed", type=lambda v: int(v, 0), default=0)
    p.add_argument("--simulations", type=int, default=100_000)
    p.add_argument("--windows", type=int, default=1)
    p.add_argument("--transitions", action="store_true",
                   help="glitch+transition-extended model")
    p.add_argument("--pairs", action="store_true",
                   help="second-order (probe-pair) evaluation")
    p.add_argument("--batch-probes", action="store_true",
                   help="evaluate first-order classes AND probe pairs "
                        "against one shared trace per chunk (mode 'both')")
    p.add_argument("--max-pairs", type=int, default=500)
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes (results are bit-identical "
                        "to --workers 1)")
    p.add_argument("--engine", default=engine_registry.DEFAULT_ENGINE,
                   choices=engine_registry.engine_names(),
                   help="simulation engine from the repro.engines registry "
                        "(results are bit-identical; unavailable engines "
                        "degrade down the ladder)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--slice", action=argparse.BooleanOptionalAction, default=True,
        help="simulate only the fan-in cone of the active probes "
             "(bit-identical to the full simulation, usually much faster; "
             "--no-slice forces full-netlist simulation)",
    )
    p.add_argument("--tenant", default="default",
                   help="tenant name for per-tenant admission quotas "
                        "(service-side; does not change results)")
    p.add_argument("--priority", default="normal",
                   choices=("high", "normal", "low"),
                   help="admission priority lane; low-priority work is "
                        "shed first under queue backpressure")
    adaptive = p.add_argument_group(
        "adaptive scheduling",
        "decide each probe as early as its evidence allows, prune decided "
        "probes, and spend the remaining budget on undecided ones",
    )
    adaptive.add_argument(
        "--adaptive", action=argparse.BooleanOptionalAction, default=False,
        help="adaptive per-probe budgets instead of a uniform budget",
    )
    adaptive.add_argument(
        "--decide-threshold", type=float, default=5.0,
        help="-log10(p) level at/above which a probe counts as leaky",
    )
    adaptive.add_argument(
        "--null-threshold", type=float, default=4.0,
        help="-log10(p) level at/below which a probe counts as null",
    )
    adaptive.add_argument(
        "--decide-chunks", type=int, default=2,
        help="consecutive chunk boundaries a criterion must hold",
    )
    adaptive.add_argument(
        "--min-null-samples", type=int, default=8_192,
        help="samples a probe needs before a null decision counts",
    )
    adaptive.add_argument(
        "--adaptive-cap", type=float, default=1.0, dest="adaptive_cap",
        help="budget-escalation hard cap for stubborn undecided probes, "
             "as a multiple of --simulations (1.0 = never exceed the "
             "uniform budget)",
    )
    exact = p.add_argument_group(
        "exact enumeration",
        "replace Monte-Carlo sampling with sharded exhaustive enumeration "
        "of every probe class (mode 'exact'): deterministic verdicts, "
        "bit-identical for any worker count or shard size",
    )
    exact.add_argument(
        "--exact", action="store_true",
        help="exhaustively enumerate instead of sampling",
    )
    exact.add_argument(
        "--max-enum-bits", type=int, default=24, dest="max_enum_bits",
        help="per-probe enumeration budget in bits; wider probes are "
             "reported infeasible",
    )
    exact.add_argument(
        "--shard-lane-bits", type=int, default=16, dest="shard_lane_bits",
        help="lanes per enumeration shard as a power of two (execution "
             "detail: any value merges to identical results)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all sub-commands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("evaluate", help="fixed-vs-random leakage evaluation")
    p.add_argument("--design", default="kronecker", choices=_DESIGNS)
    p.add_argument("--scheme", default="full")
    p.add_argument("--fixed", type=lambda v: int(v, 0), default=0)
    p.add_argument("--simulations", type=int, default=100_000)
    p.add_argument("--windows", type=int, default=1)
    p.add_argument("--transitions", action="store_true",
                   help="glitch+transition-extended model")
    p.add_argument("--pairs", action="store_true",
                   help="second-order (probe-pair) evaluation")
    p.add_argument("--max-pairs", type=int, default=500)
    p.add_argument("--engine", default=engine_registry.DEFAULT_ENGINE,
                   choices=engine_registry.engine_names(),
                   help="simulation engine from the repro.engines registry "
                        "(results are bit-identical; unavailable engines "
                        "degrade down the ladder)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable output")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--top", type=int, default=10)
    p.set_defaults(func=cmd_evaluate)

    p = sub.add_parser(
        "campaign", help="chunked, checkpointable leakage campaign"
    )
    _add_spec_arguments(p)
    p.add_argument("--chunk-size", type=int, default=None,
                   help="simulations per chunk (default: one chunk, or "
                        "8192 with --adaptive)")
    p.add_argument("--checkpoint", default=None,
                   help="NPZ checkpoint path, written after every chunk")
    p.add_argument("--resume", action="store_true",
                   help="resume from the checkpoint when it exists")
    p.add_argument("--time-budget", type=float, default=None,
                   help="wall-clock budget in seconds (truncates cleanly)")
    p.add_argument("--early-stop", type=float, default=None,
                   help="stop once some -log10(p) reaches this level")
    p.add_argument("--self-check", action="store_true",
                   help="fault-injection coverage matrix of the evaluator")
    p.add_argument("--stall-timeout", type=float, default=None,
                   help="reap worker shards making no progress for this "
                        "many seconds (restart pool once, then serial)")
    p.add_argument("--chaos-seed", type=int, default=None,
                   help="inject deterministic infrastructure faults from "
                        "this chaos seed (see docs/robustness.md)")
    p.add_argument("--chaos-p", type=float, default=0.1,
                   help="per-consultation fault probability under "
                        "--chaos-seed")
    p.add_argument("--json", action="store_true",
                   help="machine-readable output")
    p.add_argument("--top", type=int, default=10)
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser(
        "chaos-torture",
        help="assert the campaign survives injected infrastructure faults",
    )
    _add_spec_arguments(p)
    p.add_argument("--chunk-size", type=int, default=None,
                   help="simulations per chunk (default: service default)")
    p.add_argument("--seeds", type=int, default=20,
                   help="number of chaos seeds to torture with")
    p.add_argument("--seed-base", type=int, default=0,
                   help="first chaos seed (runs seed-base..seed-base+seeds)")
    p.add_argument("--chaos-p", type=float, default=0.2,
                   help="per-consultation fault probability")
    p.add_argument("--hang-seconds", type=float, default=0.01,
                   help="sleep injected by hang faults")
    p.add_argument("--max-faults", type=int, default=32,
                   help="total fault budget per run")
    p.add_argument("--sites", default=None,
                   help="comma-separated chaos sites (default: all)")
    p.add_argument("--stall-timeout", type=float, default=None,
                   help="worker-shard stall timeout during torture runs")
    p.add_argument("--workdir", default=None,
                   help="directory for torture checkpoints "
                        "(default: a fresh temp dir)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable output")
    p.set_defaults(func=cmd_chaos_torture)

    p = sub.add_parser("exact", help="exact Kronecker probe sweep")
    p.add_argument("--scheme", default="full")
    p.add_argument("--max-bits", type=int, default=23)
    p.add_argument("--engine", default=engine_registry.DEFAULT_ENGINE,
                   choices=engine_registry.engine_names(),
                   help="simulation engine from the repro.engines registry "
                        "(results are bit-identical)")
    p.add_argument("--top", type=int, default=10)
    p.set_defaults(func=cmd_exact)

    p = sub.add_parser(
        "certify",
        help="compositional (S)NI/PINI certificate with exact fallback",
    )
    p.add_argument("--design", default="kronecker", choices=_DESIGNS)
    p.add_argument("--scheme", default="full")
    p.add_argument(
        "--gadget", default=None, choices=_CERTIFY_FIXTURES,
        help="certify a built-in fixture instead of --design/--scheme",
    )
    p.add_argument(
        "--model", default="robust", choices=("classic", "robust"),
        help="classic = isolated 1-SNI + fresh-mask disjointness; robust = "
             "glitch-extended probes on gadget fan-in slices",
    )
    p.add_argument("--order", type=int, default=1)
    p.add_argument("--max-gadget-bits", type=int, default=22,
                   help="per-gadget (S)NI enumeration limit in bits")
    p.add_argument("--max-enum-bits", type=int, default=24,
                   dest="max_enum_bits",
                   help="exact-fallback enumeration budget in bits")
    p.add_argument(
        "--exact-fallback", action=argparse.BooleanOptionalAction,
        default=True,
        help="decide gadgets that fail the (conservative) NI check by "
             "exact per-probe-class enumeration",
    )
    p.add_argument("--engine", default=engine_registry.DEFAULT_ENGINE,
                   choices=engine_registry.engine_names(),
                   help="simulation engine for the exact-fallback "
                        "enumeration (bit-identical; native is fastest)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable certificate")
    p.set_defaults(func=cmd_certify)

    p = sub.add_parser("sni", help="(S)NI check of the DOM-AND gadget")
    p.add_argument("--robust", action="store_true",
                   help="glitch-extended probes")
    p.add_argument("--order", type=int, default=1)
    p.set_defaults(func=cmd_sni)

    p = sub.add_parser("report", help="netlist structure and area")
    p.add_argument("--design", default="sbox",
                   choices=_DESIGNS)
    p.add_argument("--scheme", default="full")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("verilog", help="structural Verilog export")
    p.add_argument("--design", default="kronecker",
                   choices=_DESIGNS)
    p.add_argument("--scheme", default="full")
    p.add_argument("--output", default=None)
    p.set_defaults(func=cmd_verilog)

    p = sub.add_parser(
        "serve", help="run the evaluation service (HTTP JSON API)"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8321,
                   help="TCP port (0 picks an ephemeral port)")
    p.add_argument("--state-dir", default="service-state",
                   help="directory for job records, verdict cache, "
                        "checkpoints, and telemetry")
    p.add_argument("--runner-threads", type=int, default=1,
                   help="concurrent jobs (each may use its own workers)")
    p.add_argument("--queue-limit", type=int, default=256,
                   help="submissions rejected with 429 beyond this depth")
    p.add_argument("--telemetry", default=None,
                   help="JSON-lines event log path "
                        "(default: <state-dir>/telemetry.jsonl)")
    p.add_argument("--stall-timeout", type=float, default=None,
                   help="watchdog: restart jobs making no chunk progress "
                        "for this many seconds")
    p.add_argument("--max-restarts", type=int, default=3,
                   help="restarts before a job is dead-lettered")
    p.add_argument(
        "--fleet", action=argparse.BooleanOptionalAction, default=False,
        help="act as a distributed-campaign coordinator: expose the "
             "/v1/fleet/ lease protocol and farm job chunks out to "
             "workers (results stay bit-identical to serial execution)",
    )
    p.add_argument("--local-workers", type=int, default=1,
                   help="embedded in-process fleet workers (only with "
                        "--fleet; 0 relies on external 'repro worker' "
                        "daemons)")
    p.add_argument("--lease-seconds", type=float, default=30.0,
                   help="work-item lease duration; an unrenewed lease "
                        "expires and its item is reissued")
    p.add_argument("--tenant-quota", type=int, default=None,
                   help="per-tenant cap on active (queued+running) jobs; "
                        "beyond it submissions answer 429")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "worker",
        help="fleet worker daemon pulling leased work from a coordinator",
    )
    p.add_argument("--coordinator", required=True,
                   help="coordinator base URL (a 'serve --fleet' service)")
    p.add_argument("--worker-id", default=None,
                   help="stable worker name (default: a random one)")
    p.add_argument("--poll-interval", type=float, default=0.5,
                   help="seconds between lease polls when idle")
    p.set_defaults(func=cmd_worker)

    p = sub.add_parser(
        "submit", help="submit a job to a running evaluation service"
    )
    p.add_argument("--url", default="http://127.0.0.1:8321",
                   help="service base URL")
    _add_spec_arguments(p)
    p.add_argument("--timeout", type=float, default=600,
                   help="seconds to wait for the verdict")
    p.add_argument("--json", action="store_true",
                   help="print the full report JSON (byte-exact wire form)")
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser("encrypt", help="masked AES-128 encryption")
    p.add_argument("--key", required=True, help="16-byte key, hex")
    p.add_argument("--plaintext", required=True, help="16-byte block, hex")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_encrypt)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
