"""First-class simulation-engine registry.

Every component that selects a gate-level simulation engine -- the
evaluator, the spec, the CLI, the exact-enumeration shard workers, the
benchmarks -- resolves engine names through this module instead of
hard-coding strings.  An engine is a name bound to a simulator factory
plus capability flags:

``sliceable``
    the factory accepts ``keep_nets`` and executes only the sequential
    fan-in cone of those nets (:mod:`repro.netlist.slice`);
``schedulable``
    the engine can execute a *scheduled* cone (the per-cycle dispatch
    schedule that cuts the state-feedback loop on recirculating cores);
``native``
    the engine compiles to machine code and needs a C toolchain at
    runtime;
``degrades_to``
    the next engine down the graceful-degradation ladder.  When an
    engine cannot be constructed (no C toolchain, injected
    ``engine.native_build`` / ``engine.compile`` chaos fault) callers
    walk the ladder and record the degradation in provenance and
    telemetry -- all registered engines are bit-identical, so degrading
    changes wall-clock only, never verdicts.

Factories import their simulator lazily so this module stays
import-light (:mod:`repro.spec` imports it for validation).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

__all__ = [
    "EngineError",
    "EngineInfo",
    "DEFAULT_ENGINE",
    "register_engine",
    "get_engine",
    "engine_names",
    "degradation_ladder",
    "engines_info",
    "build_simulator",
]


class EngineError(ValueError):
    """Unknown engine name or invalid registration."""


#: Factory signature: ``factory(netlist, n_lanes, keep_nets=None)`` returns
#: a simulator exposing ``run(stimulus, n_cycles, record_nets,
#: record_cycles)``.  Factories for non-sliceable engines reject
#: ``keep_nets``.
EngineFactory = Callable[..., object]


@dataclass(frozen=True)
class EngineInfo:
    """One registered engine: name, factory, and capability flags."""

    name: str
    factory: EngineFactory
    description: str
    sliceable: bool = False
    schedulable: bool = False
    native: bool = False
    #: the engine offers the fused in-kernel evaluation pipeline
    #: (``run_pipeline``: stimulus -> simulate -> extract -> histogram in
    #: one C pass); availability still depends on the runtime toolchain
    #: (``repro.netlist.native.pipeline_available``), and every consumer
    #: degrades to the bit-identical python stages when it is absent.
    pipeline: bool = False
    #: next engine down the degradation ladder (None = last resort).
    degrades_to: Optional[str] = None
    #: chaos-plane site probed before constructing this engine (None =
    #: construction cannot be fault-injected).
    chaos_site: Optional[str] = None

    def capabilities(self) -> dict:
        """JSON-friendly capability record (service ``/metrics``)."""
        return {
            "sliceable": self.sliceable,
            "schedulable": self.schedulable,
            "native": self.native,
            "pipeline": self.pipeline,
            "degrades_to": self.degrades_to,
            "description": self.description,
        }


_REGISTRY: "OrderedDict[str, EngineInfo]" = OrderedDict()

#: The engine used when a caller does not choose one.  Kept at
#: ``compiled`` so default flows never pay a C-toolchain probe or
#: kernel build; the native engine is opt-in per spec/CLI/benchmark.
DEFAULT_ENGINE = "compiled"


def register_engine(info: EngineInfo) -> None:
    """Register (or replace) an engine by name."""
    if not info.name or not info.name.isidentifier():
        raise EngineError(f"invalid engine name {info.name!r}")
    _REGISTRY[info.name] = info


def get_engine(name: str) -> EngineInfo:
    """Look up a registered engine; raises :class:`EngineError`."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise EngineError(
            f"unknown engine {name!r}; registered engines: "
            f"{', '.join(engine_names())}"
        ) from None


def engine_names() -> Tuple[str, ...]:
    """Registered engine names in registration order."""
    return tuple(_REGISTRY)


def degradation_ladder(name: str) -> Tuple[EngineInfo, ...]:
    """The engine followed by every fallback below it, in order.

    ``degradation_ladder("native")`` is ``(native, compiled, bitsliced)``.
    The chain is validated against cycles at walk time.
    """
    ladder = []
    seen = set()
    current: Optional[str] = name
    while current is not None:
        if current in seen:
            raise EngineError(
                f"degradation cycle through engine {current!r}"
            )
        seen.add(current)
        info = get_engine(current)
        ladder.append(info)
        current = info.degrades_to
    return tuple(ladder)


def engines_info() -> dict:
    """Name -> capability record for every registered engine."""
    return {name: info.capabilities() for name, info in _REGISTRY.items()}


def build_simulator(
    name: str,
    netlist,
    n_lanes: int,
    keep_nets=None,
    record_nets=None,
    decide: Optional[Callable[[str], bool]] = None,
    on_degrade: Optional[Callable[..., None]] = None,
):
    """Construct a simulator, walking the degradation ladder on failure.

    Tries ``name`` first, then each ``degrades_to`` fallback.  Before
    constructing an engine with a ``chaos_site``, ``decide(site)`` is
    consulted (the chaos fault plane); an injected fault raises the same
    :class:`~repro.netlist.simulate.SimulationError` a real construction
    failure would.  On every failed rung ``on_degrade(from_info,
    to_info, exc)`` is invoked so callers can record the degradation in
    provenance/telemetry.  Returns ``(simulator, info)`` where ``info``
    is the engine that actually constructed; raises the last rung's
    error when nothing on the ladder works.

    ``record_nets`` is a construction hint (which nets the caller will
    record) passed only to engines that benefit from it (``native``).
    """
    from repro.netlist.simulate import SimulationError

    ladder = degradation_ladder(name)
    for i, info in enumerate(ladder):
        try:
            if (
                info.chaos_site is not None
                and decide is not None
                and decide(info.chaos_site)
            ):
                raise SimulationError(
                    f"chaos: injected {info.chaos_site} fault"
                )
            if info.native:
                sim = info.factory(
                    netlist, n_lanes,
                    keep_nets=keep_nets, record_nets=record_nets,
                )
            else:
                sim = info.factory(netlist, n_lanes, keep_nets=keep_nets)
            return sim, info
        except SimulationError as exc:
            if i + 1 >= len(ladder):
                raise
            if on_degrade is not None:
                on_degrade(info, ladder[i + 1], exc)
    raise EngineError(f"empty degradation ladder for {name!r}")


# --------------------------------------------------------------- factories
# Lazy imports keep ``import repro.engines`` cheap (spec validation, CLI
# argument parsing) -- numpy-heavy simulator modules load on first use.


def _bitsliced_factory(netlist, n_lanes, keep_nets=None):
    from repro.netlist.simulate import BitslicedSimulator

    return BitslicedSimulator(netlist, n_lanes, keep_nets=keep_nets)


def _compiled_factory(netlist, n_lanes, keep_nets=None):
    from repro.netlist.compile import CompiledSimulator

    return CompiledSimulator(netlist, n_lanes, keep_nets=keep_nets)


def _native_factory(netlist, n_lanes, keep_nets=None, record_nets=None):
    from repro.netlist.native import NativeSimulator

    return NativeSimulator(
        netlist, n_lanes, keep_nets=keep_nets, record_nets=record_nets
    )


register_engine(
    EngineInfo(
        name="bitsliced",
        factory=_bitsliced_factory,
        description=(
            "interpreting numpy simulator, one dispatch per gate per "
            "cycle; the last-resort reference engine"
        ),
        sliceable=True,
    )
)
register_engine(
    EngineInfo(
        name="compiled",
        factory=_compiled_factory,
        description=(
            "levelized gate program, one numpy dispatch per cell type "
            "per level, cached by netlist content hash"
        ),
        sliceable=True,
        schedulable=True,
        degrades_to="bitsliced",
        chaos_site="engine.compile",
    )
)
register_engine(
    EngineInfo(
        name="native",
        factory=_native_factory,
        description=(
            "gate program fused into one generated-C kernel (cc + "
            "ffi.dlopen, content-hash cached) with an internal thread "
            "pool over lane words; offers the in-kernel evaluation "
            "pipeline and a scheduled-cone interpreter"
        ),
        sliceable=True,
        schedulable=True,
        native=True,
        pipeline=True,
        degrades_to="compiled",
        chaos_site="engine.native_build",
    )
)
