"""Algebraic normal forms (ANF) over GF(2).

A :class:`BitPoly` is an XOR of monomials, each monomial an AND of named
variables; the constant 1 is the empty monomial.  This is the representation
used in the paper's Eq. (7) derivations (``y0^i = x0^i x1 + r1`` ...), and
the test suite verifies our netlists against those equations symbolically.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Mapping, Set

Monomial = FrozenSet[str]


class BitPoly:
    """An immutable GF(2) polynomial in named Boolean variables."""

    __slots__ = ("monomials",)

    def __init__(self, monomials: Iterable[Monomial] = ()):
        self.monomials: FrozenSet[Monomial] = frozenset(monomials)

    # ---------------------------------------------------------- constructors

    @classmethod
    def zero(cls) -> "BitPoly":
        """The zero polynomial."""
        return cls()

    @classmethod
    def one(cls) -> "BitPoly":
        """The constant-1 polynomial."""
        return cls((frozenset(),))

    @classmethod
    def var(cls, name: str) -> "BitPoly":
        """A single-variable polynomial."""
        return cls((frozenset((name,)),))

    @classmethod
    def constant(cls, value: int) -> "BitPoly":
        """The LSB of ``value`` as a constant polynomial."""
        return cls.one() if value & 1 else cls.zero()

    # ----------------------------------------------------------- arithmetic

    def __xor__(self, other: "BitPoly") -> "BitPoly":
        return BitPoly(self.monomials ^ other.monomials)

    def __and__(self, other: "BitPoly") -> "BitPoly":
        result: Set[Monomial] = set()
        for a in self.monomials:
            for b in other.monomials:
                product = a | b
                if product in result:
                    result.remove(product)
                else:
                    result.add(product)
        return BitPoly(result)

    def __invert__(self) -> "BitPoly":
        return self ^ BitPoly.one()

    def __or__(self, other: "BitPoly") -> "BitPoly":
        # a or b = a ^ b ^ ab
        return self ^ other ^ (self & other)

    # ------------------------------------------------------------- queries

    @property
    def is_zero(self) -> bool:
        """True for the zero polynomial."""
        return not self.monomials

    @property
    def is_one(self) -> bool:
        """True for the constant-1 polynomial."""
        return self.monomials == frozenset((frozenset(),))

    @property
    def degree(self) -> int:
        """Algebraic degree (size of the largest monomial)."""
        return max((len(m) for m in self.monomials), default=0)

    def variables(self) -> FrozenSet[str]:
        """All variables occurring in the polynomial."""
        out: Set[str] = set()
        for m in self.monomials:
            out.update(m)
        return frozenset(out)

    # ----------------------------------------------------------- evaluation

    def evaluate(self, assignment: Mapping[str, int]) -> int:
        """Evaluate on a complete assignment of its variables."""
        total = 0
        for monomial in self.monomials:
            product = 1
            for name in monomial:
                product &= assignment[name] & 1
                if not product:
                    break
            total ^= product
        return total

    def substitute(self, name: str, replacement: "BitPoly") -> "BitPoly":
        """Replace a variable by a polynomial."""
        with_var: Set[Monomial] = set()
        without: Set[Monomial] = set()
        for monomial in self.monomials:
            if name in monomial:
                with_var.add(monomial - {name})
            else:
                without.add(monomial)
        result = BitPoly(without)
        if with_var:
            result = result ^ (BitPoly(with_var) & replacement)
        return result

    def rename(self, mapping: Mapping[str, str]) -> "BitPoly":
        """Rename variables."""
        return BitPoly(
            frozenset(
                frozenset(mapping.get(v, v) for v in monomial)
                for monomial in self.monomials
            )
        )

    # -------------------------------------------------------------- dunders

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BitPoly) and self.monomials == other.monomials

    def __hash__(self) -> int:
        return hash(self.monomials)

    def __repr__(self) -> str:
        return f"BitPoly({self!s})"

    def __str__(self) -> str:
        if self.is_zero:
            return "0"
        parts = []
        for monomial in sorted(
            self.monomials, key=lambda m: (len(m), sorted(m))
        ):
            parts.append("*".join(sorted(monomial)) if monomial else "1")
        return " + ".join(parts)


def xor_all(polys: Iterable[BitPoly]) -> BitPoly:
    """XOR a sequence of polynomials."""
    result = BitPoly.zero()
    for poly in polys:
        result = result ^ poly
    return result
