"""The paper's Section III root-cause analysis, automated.

Three entry points mirror the paper's argument:

* :func:`kronecker_layer_equations` recovers the simplified share equations
  of Eq. (7) (``y0^i = x0^i x1 + r1`` ...) from the *built netlist* by ANF
  unrolling and share substitution.
* :func:`eq8_cancellation_witness` shows the Eq. (8) mechanism: with
  ``r1 = r3`` the fresh mask cancels from ``y0^0 xor y2^0``, leaving a
  mask-free function of unmasked values.
* :func:`v1_distribution_by_secret` computes the exact distribution of the
  glitch-extended observation of probe v1 ({a1, b1, a2, b2}) conditioned on
  the unmasked input, confirming dependence exactly for the flawed schemes.

Variable naming: inputs appear as ``<net>@<cycle>``; after substitution the
secret bits appear as ``X<i>``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.anf import BitPoly
from repro.analysis.unroll import AnfUnroller
from repro.analysis.walsh import (
    depends_on_conditioning,
    distributions_by_assignment,
)
from repro.core.kronecker import KroneckerDesign, build_kronecker_delta
from repro.core.optimizations import RandomnessScheme

#: Cycle at which layer-1 register outputs are valid for the wave entering
#: at cycle 0 (one register stage per DOM layer).
LAYER1_CYCLE = 1
LAYER2_CYCLE = 2


def _substitute_shares(
    design: KroneckerDesign, unroller: AnfUnroller, poly: BitPoly
) -> BitPoly:
    """Rewrite share-1 input variables as ``share0 xor X<i>`` at every cycle.

    After this substitution a polynomial is expressed in the share-0
    randomness, the fresh masks and the *unmasked* secret bits ``X<i>`` --
    the form the paper's equations use.
    """
    netlist = design.netlist
    result = poly
    for bit, net in enumerate(design.dut.share_buses[1]):
        prefix = netlist.net_name(net)
        for name in sorted(result.variables()):
            if name.startswith(prefix + "@"):
                cycle = name.split("@")[1]
                share0 = unroller.input_variable(
                    design.dut.share_buses[0][bit], int(cycle)
                )
                replacement = BitPoly.var(share0) ^ BitPoly.var(f"X{bit}")
                result = result.substitute(name, replacement)
    return result


def kronecker_layer_equations(
    scheme: RandomnessScheme = RandomnessScheme.FULL,
) -> Dict[str, BitPoly]:
    """Simplified per-share equations of the Kronecker tree (Eq. (7) form).

    Returns ANFs of the layer-1 gate outputs ``y{j}^{i}`` (at the cycle
    where their registers are valid) with share 1 substituted, plus the
    layer-2 outputs ``w0^{i}``/``w1^{i}``.
    """
    design = build_kronecker_delta(scheme)
    unroller = AnfUnroller(design.netlist)
    equations: Dict[str, BitPoly] = {}
    for j, label in enumerate(("y0", "y1", "y2", "y3")):
        for share in range(2):
            net = design.intermediates[label][share]
            expr = unroller.expression(net, LAYER1_CYCLE)
            equations[f"{label}^{share}"] = _substitute_shares(
                design, unroller, expr
            )
    for label in ("w0", "w1"):
        for share in range(2):
            net = design.intermediates[label][share]
            expr = unroller.expression(net, LAYER2_CYCLE)
            equations[f"{label}^{share}"] = _substitute_shares(
                design, unroller, expr
            )
    return equations


def eq8_cancellation_witness(
    scheme: RandomnessScheme,
) -> Tuple[bool, BitPoly]:
    """Check whether the fresh mask cancels from ``y0^0 xor y2^0``.

    Returns ``(cancelled, polynomial)``: ``cancelled`` is True when the XOR
    of the two layer-1 share outputs contains no mask variable -- the
    Eq. (8) situation (``x0^0 x1 = x4^0 x5`` observable) that arises when
    ``r1 = r3``.
    """
    design = build_kronecker_delta(scheme)
    unroller = AnfUnroller(design.netlist)
    y0 = unroller.expression(design.intermediates["y0"][0], LAYER1_CYCLE)
    y2 = unroller.expression(design.intermediates["y2"][0], LAYER1_CYCLE)
    combined = _substitute_shares(design, unroller, y0 ^ y2)
    mask_prefix = "rand."
    cancelled = not any(
        name.startswith(mask_prefix) for name in combined.variables()
    )
    return cancelled, combined


def v1_observation_anf(scheme: RandomnessScheme) -> List[BitPoly]:
    """ANFs of the glitch-extended observation of probe v1: {a1, b1, a2, b2}.

    These are the four layer-2 registers feeding G7's share-0 product, with
    share 1 substituted so the secret bits appear explicitly.
    """
    design = build_kronecker_delta(scheme)
    unroller = AnfUnroller(design.netlist)
    netlist = design.netlist
    register_nets = [
        netlist.net("g5.inner0$reg"),  # a1 = [y0^0 y1^0]
        netlist.net("g5.blind01$reg"),  # b1 = [y0^0 y1^1 xor r5]
        netlist.net("g6.inner0$reg"),  # a2 = [y2^0 y3^0]
        netlist.net("g6.blind01$reg"),  # b2 = [y2^0 y3^1 xor r6]
    ]
    return [
        _substitute_shares(
            design, unroller, unroller.expression(net, LAYER2_CYCLE)
        )
        for net in register_nets
    ]


def v1_distribution_by_secret(
    scheme: RandomnessScheme,
    secret_bits: Tuple[str, ...] = ("X1", "X5"),
    fixed_secret_bits: Dict[str, int] = None,
) -> Dict[Tuple[int, ...], Dict[Tuple[int, ...], float]]:
    """Exact distribution of the v1 observation per unmasked-bit assignment.

    By default conditions on the paper's ``x1`` and ``x5`` (with the other
    secret bits fixed to 0), reproducing the Eq. (8) conclusion: for the
    flawed schemes the distributions differ across assignments.
    """
    observation = v1_observation_anf(scheme)
    fixed = {f"X{i}": 0 for i in range(8)}
    if fixed_secret_bits:
        fixed.update(fixed_secret_bits)
    for name in secret_bits:
        fixed.pop(name, None)
    return distributions_by_assignment(observation, list(secret_bits), fixed)


def v1_leaks(scheme: RandomnessScheme) -> bool:
    """True when the v1 observation depends on the unmasked inputs."""
    return depends_on_conditioning(v1_distribution_by_secret(scheme))


def find_linear_cancellations(
    observations: List[BitPoly],
    mask_prefix: str = "rand.",
    max_subset: int = 4,
) -> List[Tuple[Tuple[int, ...], BitPoly]]:
    """Search XOR-combinations of observed signals that cancel all masks.

    A *linear* mask-reuse screen: if some XOR of observed signals is a
    non-constant function of the *secret bits alone* (no fresh masks, no
    unobserved sharing randomness left), the adversary computes an
    unblinded secret-dependent value directly from the observation -- a
    definite first-order break.  Returns the offending
    ``(indices, residual polynomial)`` pairs up to subsets of size
    ``max_subset``.

    Notably, this sound screen comes back *empty* for the Kronecker
    probes, flawed schemes included: the Eq. (8) leakage is
    **conditional** (mask cancellations appear inside products and only
    shift joint distributions, cf. :func:`v1_distribution_by_secret`) --
    which is precisely why a manual review of linear mask coverage missed
    it, and why the paper argues for distribution-level evaluation tools.
    """
    from itertools import combinations

    findings: List[Tuple[Tuple[int, ...], BitPoly]] = []
    for size in range(2, max_subset + 1):
        for indices in combinations(range(len(observations)), size):
            combined = BitPoly.zero()
            for index in indices:
                combined = combined ^ observations[index]
            variables = combined.variables()
            if not variables:
                continue
            if all(
                v.startswith("X") and not v.startswith(mask_prefix)
                for v in variables
            ):
                findings.append((indices, combined))
    return findings


def transition_observation_anf(
    scheme: RandomnessScheme, probe_net_name: str = "g5.blind01"
) -> List[BitPoly]:
    """Glitch+transition observation of a layer-2 probe, as ANFs.

    The observation contains the probe's stable support at two consecutive
    cycles.  Like the glitch-model v1 case, the Eq. (9) transition leakage
    is conditional (mask coincidences inside products across the two
    cycles), so the linear screen of :func:`find_linear_cancellations`
    stays empty here too -- the statistical evaluators carry the verdict.
    """
    design = build_kronecker_delta(scheme)
    unroller = AnfUnroller(design.netlist)
    netlist = design.netlist
    probe = netlist.net(probe_net_name)

    from repro.netlist.topo import stable_support

    support = sorted(stable_support(netlist, probe))
    observations: List[BitPoly] = []
    for cycle in (LAYER2_CYCLE, LAYER2_CYCLE - 1):
        for net in support:
            expr = unroller.expression(net, cycle)
            observations.append(_substitute_shares(design, unroller, expr))
    return observations
