"""Symbolic root-cause analysis tools.

The paper's Section III explains the leakage with algebraic normal forms of
the tree nodes (its Eq. (7)) and a probability argument on the G7 probe
extensions (its Eq. (8)).  This package automates both:

* :mod:`repro.analysis.anf` -- algebraic normal forms over GF(2).
* :mod:`repro.analysis.unroll` -- lazy ANF extraction from sequential
  netlists (registers unrolled over cycles).
* :mod:`repro.analysis.walsh` -- exact bias/distribution computation of
  small ANF systems.
* :mod:`repro.analysis.rootcause` -- the paper's derivations, reproduced
  end-to-end on the built netlists.
"""

from repro.analysis.anf import BitPoly
from repro.analysis.unroll import AnfUnroller
from repro.analysis.walsh import (
    bias,
    joint_distribution,
    distributions_by_assignment,
)
from repro.analysis.rootcause import (
    kronecker_layer_equations,
    v1_distribution_by_secret,
    eq8_cancellation_witness,
)

__all__ = [
    "BitPoly",
    "AnfUnroller",
    "bias",
    "joint_distribution",
    "distributions_by_assignment",
    "kronecker_layer_equations",
    "v1_distribution_by_secret",
    "eq8_cancellation_witness",
]
