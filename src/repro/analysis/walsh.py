"""Exact bias and joint-distribution computation for small ANF systems.

These are the probability computations backing the paper's Eq. (8)
argument: given the ANF of the signals a probe observes, enumerate the
randomness exhaustively and compare the resulting distributions across
values of the unmasked inputs.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.analysis.anf import BitPoly
from repro.errors import ReproError

MAX_ENUM_VARS = 24


def _free_variables(
    polys: Sequence[BitPoly], fixed: Mapping[str, int]
) -> List[str]:
    names = set()
    for poly in polys:
        names.update(poly.variables())
    free = sorted(names - set(fixed))
    if len(free) > MAX_ENUM_VARS:
        raise ReproError(
            f"{len(free)} free variables exceed the enumeration limit"
        )
    return free


def bias(poly: BitPoly, fixed: Mapping[str, int] = ()) -> float:
    """Pr[poly = 1] with all free variables uniform."""
    fixed = dict(fixed)
    free = _free_variables([poly], fixed)
    ones = 0
    total = 1 << len(free)
    assignment = dict(fixed)
    for values in product((0, 1), repeat=len(free)):
        assignment.update(zip(free, values))
        ones += poly.evaluate(assignment)
    return ones / total


def joint_distribution(
    polys: Sequence[BitPoly], fixed: Mapping[str, int] = ()
) -> Dict[Tuple[int, ...], float]:
    """Exact joint distribution of a tuple of ANFs, free vars uniform."""
    fixed = dict(fixed)
    free = _free_variables(polys, fixed)
    counts: Dict[Tuple[int, ...], int] = {}
    assignment = dict(fixed)
    for values in product((0, 1), repeat=len(free)):
        assignment.update(zip(free, values))
        observation = tuple(p.evaluate(assignment) for p in polys)
        counts[observation] = counts.get(observation, 0) + 1
    total = 1 << len(free)
    return {obs: c / total for obs, c in counts.items()}


def distributions_by_assignment(
    polys: Sequence[BitPoly],
    conditioning: Sequence[str],
    fixed: Mapping[str, int] = (),
) -> Dict[Tuple[int, ...], Dict[Tuple[int, ...], float]]:
    """Joint distribution per assignment of the conditioning variables.

    The conditioning variables model *unmasked* values (the paper's x1, x5);
    a first-order-secure observation has identical distributions for every
    assignment.
    """
    results = {}
    for values in product((0, 1), repeat=len(conditioning)):
        case = dict(fixed)
        case.update(zip(conditioning, values))
        results[values] = joint_distribution(polys, case)
    return results


def total_variation(
    p: Mapping[Tuple[int, ...], float], q: Mapping[Tuple[int, ...], float]
) -> float:
    """Total-variation distance between two distributions."""
    keys = set(p) | set(q)
    return 0.5 * sum(abs(p.get(k, 0.0) - q.get(k, 0.0)) for k in keys)


def depends_on_conditioning(
    distributions: Mapping[Tuple[int, ...], Mapping[Tuple[int, ...], float]],
    tolerance: float = 1e-12,
) -> bool:
    """True when the conditioned distributions are not all identical."""
    values = list(distributions.values())
    return any(
        total_variation(values[0], other) > tolerance for other in values[1:]
    )
