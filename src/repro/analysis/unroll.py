"""Lazy ANF extraction from sequential netlists.

Registers are unrolled over clock cycles: the expression of a register
output at cycle ``c`` is the expression of its D input at cycle ``c-1``;
at cycle 0 registers hold the reset value 0.  Primary inputs become
variables named ``<net name>@<cycle>``.

This turns a pipelined masked circuit into the per-wave equations the paper
manipulates in Section III; combined with share substitution
(``x^1 = x^0 xor X``) the simplified forms of Eq. (7) drop out, which the
test suite checks literally.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.analysis.anf import BitPoly
from repro.errors import NetlistError
from repro.netlist.cells import CellType
from repro.netlist.core import Netlist


class AnfUnroller:
    """Computes ANF expressions of nets at given cycles, memoized."""

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self._cache: Dict[Tuple[int, int], BitPoly] = {}

    def input_variable(self, net: int, cycle: int) -> str:
        """Variable name for a primary input at a cycle."""
        return f"{self.netlist.net_name(net)}@{cycle}"

    def expression(self, net: int, cycle: int) -> BitPoly:
        """ANF of ``net`` at ``cycle`` in terms of input variables."""
        key = (net, cycle)
        if key in self._cache:
            return self._cache[key]
        result = self._compute(net, cycle)
        self._cache[key] = result
        return result

    def _compute(self, net: int, cycle: int) -> BitPoly:
        netlist = self.netlist
        if netlist.is_input(net):
            return BitPoly.var(self.input_variable(net, cycle))
        driver = netlist.driver(net)
        if driver is None:
            raise NetlistError(
                f"net {netlist.net_name(net)!r} is floating"
            )
        kind = driver.cell_type
        if kind is CellType.DFF:
            if cycle == 0:
                return BitPoly.zero()  # reset value
            return self.expression(driver.inputs[0], cycle - 1)
        operands = [self.expression(n, cycle) for n in driver.inputs]
        if kind is CellType.CONST0:
            return BitPoly.zero()
        if kind is CellType.CONST1:
            return BitPoly.one()
        if kind is CellType.BUF:
            return operands[0]
        if kind is CellType.NOT:
            return ~operands[0]
        if kind is CellType.AND:
            return operands[0] & operands[1]
        if kind is CellType.NAND:
            return ~(operands[0] & operands[1])
        if kind is CellType.OR:
            return operands[0] | operands[1]
        if kind is CellType.NOR:
            return ~(operands[0] | operands[1])
        if kind is CellType.XOR:
            return operands[0] ^ operands[1]
        if kind is CellType.XNOR:
            return ~(operands[0] ^ operands[1])
        if kind is CellType.MUX:
            select, d0, d1 = operands
            return (d0 & ~select) ^ (d1 & select)
        raise NetlistError(f"unsupported cell type {kind}")  # pragma: no cover
