"""Masking primitives.

* :mod:`repro.masking.shares` -- value-level Boolean and multiplicative
  sharings (paper Eq. (1) and Eq. (3)).
* :mod:`repro.masking.randomness` -- the fresh-mask bus: named random-input
  wires plus derived (registered XOR) bits, the substrate on which the
  paper's randomness-reuse optimizations are expressed.
* :mod:`repro.masking.dom` -- netlist-level DOM-indep multiplier gadgets
  (Gross et al.), arbitrary order.
* :mod:`repro.masking.gadgets` -- share-wise linear-layer helpers.
"""

from repro.masking.shares import BooleanSharing, MultiplicativeSharing
from repro.masking.randomness import MaskBus
from repro.masking.dom import dom_and, dom_and_mask_count
from repro.masking.gadgets import (
    sharewise_not,
    sharewise_register,
    sharewise_xor,
)

__all__ = [
    "BooleanSharing",
    "MultiplicativeSharing",
    "MaskBus",
    "dom_and",
    "dom_and_mask_count",
    "sharewise_xor",
    "sharewise_not",
    "sharewise_register",
]
