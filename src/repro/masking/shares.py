"""Value-level sharings.

These model the paper's Eq. (1) (Boolean masking) and Eq. (3) (multiplicative
masking) on plain integers; the netlist designs are checked against them, and
the value-level masked AES (:mod:`repro.core.aes_masked`) computes with them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import MaskingError
from repro.gf.gf256 import GF256
from repro.gf.gf2n import GF2n


@dataclass(frozen=True)
class BooleanSharing:
    """An additive (XOR) sharing of a value: ``X = X^1 xor ... xor X^d``."""

    shares: Tuple[int, ...]
    width: int = 8

    def __post_init__(self) -> None:
        if len(self.shares) < 2:
            raise MaskingError("a sharing needs at least two shares")
        limit = 1 << self.width
        if any(not 0 <= s < limit for s in self.shares):
            raise MaskingError("share out of range for the declared width")

    @classmethod
    def share(
        cls,
        value: int,
        n_shares: int = 2,
        rng: Optional[random.Random] = None,
        width: int = 8,
    ) -> "BooleanSharing":
        """Split ``value`` into ``n_shares`` uniform Boolean shares."""
        rng = rng or random.Random()
        limit = 1 << width
        if not 0 <= value < limit:
            raise MaskingError("value out of range for the declared width")
        randoms = [rng.randrange(limit) for _ in range(n_shares - 1)]
        last = value
        for r in randoms:
            last ^= r
        return cls(tuple(randoms + [last]), width)

    @property
    def value(self) -> int:
        """Recombine the shares."""
        result = 0
        for share in self.shares:
            result ^= share
        return result

    @property
    def order(self) -> int:
        """Masking order d (number of shares minus one)."""
        return len(self.shares) - 1

    def xor(self, other: "BooleanSharing") -> "BooleanSharing":
        """Share-wise XOR (a linear operation, needs no randomness)."""
        if len(other.shares) != len(self.shares) or other.width != self.width:
            raise MaskingError("incompatible sharings")
        return BooleanSharing(
            tuple(a ^ b for a, b in zip(self.shares, other.shares)), self.width
        )

    def xor_constant(self, constant: int) -> "BooleanSharing":
        """XOR a public constant into the first share."""
        shares = list(self.shares)
        shares[0] ^= constant
        return BooleanSharing(tuple(shares), self.width)

    def map_linear(self, func) -> "BooleanSharing":
        """Apply a GF(2)-linear function to every share."""
        return BooleanSharing(
            tuple(func(share) for share in self.shares), self.width
        )


@dataclass(frozen=True)
class MultiplicativeSharing:
    """A multiplicative sharing per the paper's Eq. (3).

    ``X = (X^1)^-1 * ... * (X^(d-1))^-1 * X^d`` in GF(2^n); all shares except
    possibly the last must be non-zero.  The zero-value problem is visible
    directly: ``X == 0`` iff the last share is 0, unmasked by the others.
    """

    shares: Tuple[int, ...]
    field: GF2n = GF256

    def __post_init__(self) -> None:
        if len(self.shares) < 2:
            raise MaskingError("a sharing needs at least two shares")
        if any(s == 0 for s in self.shares[:-1]):
            raise MaskingError("multiplicative mask shares must be non-zero")

    @classmethod
    def share(
        cls,
        value: int,
        n_shares: int = 2,
        rng: Optional[random.Random] = None,
        field: GF2n = GF256,
    ) -> "MultiplicativeSharing":
        """Split ``value`` into multiplicative shares (Eq. (3))."""
        rng = rng or random.Random()
        masks = [rng.randrange(1, field.order) for _ in range(n_shares - 1)]
        last = value
        for m in masks:
            last = field.multiply(last, m)
        return cls(tuple(masks + [last]), field)

    @property
    def value(self) -> int:
        """Recombine the shares per Eq. (3)."""
        result = self.shares[-1]
        for share in self.shares[:-1]:
            result = self.field.multiply(result, self.field.inverse(share))
        return result

    def multiply_public(self, constant: int) -> "MultiplicativeSharing":
        """Multiply the shared value by a public non-zero constant."""
        if constant == 0:
            raise MaskingError("public factor must be non-zero")
        shares = list(self.shares)
        shares[-1] = self.field.multiply(shares[-1], constant)
        return MultiplicativeSharing(tuple(shares), self.field)
