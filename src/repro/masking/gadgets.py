"""Share-wise helpers for linear layers of masked circuits.

Linear operations act on each share independently (paper Section II-A); these
helpers keep that structure explicit when assembling masked netlists.
A "shared bus" is a list of share buses: ``shares[i][bit]`` is a net.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import MaskingError
from repro.netlist.builder import CircuitBuilder

SharedBus = List[List[int]]


def sharewise_xor(
    builder: CircuitBuilder, a: SharedBus, b: SharedBus
) -> SharedBus:
    """XOR two shared buses share by share (linear, no fresh randomness)."""
    if len(a) != len(b):
        raise MaskingError("share counts differ")
    return [builder.xor_bus(sa, sb) for sa, sb in zip(a, b)]


def sharewise_not(builder: CircuitBuilder, a: SharedBus) -> SharedBus:
    """Complement a shared value by inverting share 0 only.

    ``NOT x = (NOT x^0) xor x^1 xor ...`` -- inverting a single share flips
    the recombined value while keeping the sharing uniform.
    """
    result = [list(share) for share in a]
    result[0] = builder.not_bus(result[0])
    return result


def sharewise_register(
    builder: CircuitBuilder, a: SharedBus, name: str
) -> SharedBus:
    """Register every bit of every share (one pipeline stage)."""
    return [
        builder.reg_bus(share, f"{name}.s{i}") for i, share in enumerate(a)
    ]


def sharewise_linear(
    builder: CircuitBuilder,
    matrix: Sequence[int],
    a: SharedBus,
    constant: int = 0,
) -> SharedBus:
    """Apply a GF(2) matrix to each share; the constant goes to share 0 only.

    Adding the affine constant to a single share keeps ``xor`` of shares
    equal to the affine image -- this is how the AES affine transformation is
    applied to a Boolean-masked state.
    """
    result = []
    for i, share in enumerate(a):
        share_constant = constant if i == 0 else 0
        result.append(builder.gf2_linear(matrix, share, share_constant))
    return result


def unshare_xor(builder: CircuitBuilder, a: SharedBus) -> List[int]:
    """Recombine a shared bus with XOR trees (for test harness outputs only).

    Real masked hardware never recombines internally; this helper exists so
    functional tests can observe the unmasked value at the boundary.
    """
    width = len(a[0])
    if any(len(share) != width for share in a):
        raise MaskingError("share widths differ")
    return [
        builder.xor_reduce([share[bit] for share in a]) for bit in range(width)
    ]
