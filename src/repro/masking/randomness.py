"""The fresh-mask bus.

Masked hardware receives fresh randomness on dedicated input wires, one new
value every clock cycle.  Randomness *reuse* -- the subject of the paper --
is a wiring decision: several gadgets consume the same bus wire within a
cycle.  :class:`MaskBus` makes those decisions explicit and auditable: every
fresh bit is a distinct primary input, and derived bits (such as the
``r6 = [r5 xor r2]`` registered combination in De Meyer et al.'s Eq. (6))
are built as real netlist logic so the evaluator sees their true timing.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import MaskingError
from repro.netlist.builder import CircuitBuilder


class MaskBus:
    """Allocates named fresh-mask input wires on a builder."""

    def __init__(self, builder: CircuitBuilder, prefix: str = "rand"):
        self.builder = builder
        self.prefix = prefix
        self._bits: Dict[str, int] = {}
        self._order: List[str] = []

    def fresh(self, label: str) -> int:
        """Create (or return) the fresh-mask input wire called ``label``."""
        if label not in self._bits:
            net = self.builder.input(f"{self.prefix}.{label}")
            self._bits[label] = net
            self._order.append(label)
        return self._bits[label]

    def fresh_byte(self, label: str) -> List[int]:
        """Create an 8-bit fresh-mask bus ``label[0..7]``."""
        return [self.fresh(f"{label}[{i}]") for i in range(8)]

    def derived_registered_xor(self, label: str, a: int, b: int) -> int:
        """A mask bit produced as ``[a xor b]`` (XOR captured in a register).

        This is precisely the construction of ``r6`` in the paper's Eq. (6):
        the register delays the combination by one cycle, which is what makes
        its interaction with the pipeline stages non-obvious -- and analyzable
        only by tools that model the true netlist timing.
        """
        if label in self._bits:
            raise MaskingError(f"mask label {label!r} already defined")
        xor_net = self.builder.xor(a, b)
        reg_net = self.builder.reg(xor_net, f"{self.prefix}.{label}$reg")
        self._bits[label] = reg_net
        self._order.append(label)
        return reg_net

    def derived_delayed(self, label: str, source: int, cycles: int) -> int:
        """A mask bit that is ``source`` delayed by a register chain.

        Register-delayed reuse separates the *consumption times* of one
        physical random bit by more than the pipeline depth a probe can see,
        which is what makes cross-layer recycling survive transition-extended
        probing (compare the paper's Section IV analysis).
        """
        if label in self._bits:
            raise MaskingError(f"mask label {label!r} already defined")
        if cycles < 1:
            raise MaskingError("delay must be at least one cycle")
        net = source
        for stage in range(cycles):
            net = self.builder.reg(net, f"{self.prefix}.{label}$d{stage}")
        self._bits[label] = net
        self._order.append(label)
        return net

    def derived_delayed_xor(
        self, label: str, a: int, delay_a: int, b: int, delay_b: int
    ) -> int:
        """A mask bit ``delay^da(a) xor delay^db(b)`` of two source bits.

        Recycling one bit is pair-observable: two probes can capture its two
        consumption times and cancel it.  An XOR of two *differently delayed*
        bits resists that -- cancelling it takes probes on both components,
        and with only two probes nothing is left to observe the blinded
        value.  This construction is what makes our 13-fresh-bit
        second-order scheme survive bivariate evaluation (see
        :class:`repro.core.optimizations.SecondOrderScheme`).
        """
        if label in self._bits:
            raise MaskingError(f"mask label {label!r} already defined")
        net_a = a
        for stage in range(delay_a):
            net_a = self.builder.reg(net_a, f"{self.prefix}.{label}$a{stage}")
        net_b = b
        for stage in range(delay_b):
            net_b = self.builder.reg(net_b, f"{self.prefix}.{label}$b{stage}")
        combined = self.builder.xor(net_a, net_b, f"{self.prefix}.{label}")
        self._bits[label] = combined
        self._order.append(label)
        return combined

    def alias(self, label: str, existing: int) -> int:
        """Name an existing net as a mask (pure reuse, no new wire)."""
        if label in self._bits:
            raise MaskingError(f"mask label {label!r} already defined")
        self._bits[label] = existing
        self._order.append(label)
        return existing

    def net(self, label: str) -> int:
        """Look up a previously defined mask bit."""
        try:
            return self._bits[label]
        except KeyError:
            raise MaskingError(f"unknown mask label {label!r}") from None

    @property
    def fresh_input_nets(self) -> List[int]:
        """All primary-input nets this bus created (the fresh-bit cost)."""
        inputs = set(self.builder.netlist.inputs)
        seen = set()
        result = []
        for label in self._order:
            net = self._bits[label]
            if net in inputs and net not in seen:
                seen.add(net)
                result.append(net)
        return result

    @property
    def n_fresh_bits(self) -> int:
        """Number of fresh random bits consumed per cycle."""
        return len(self.fresh_input_nets)

    def labels(self) -> List[str]:
        """All labels in definition order."""
        return list(self._order)
