"""Domain-Oriented Masking (DOM) multiplier gadgets as netlist generators.

The DOM-indep multiplier of Gross et al. computes a shared AND of two
``d+1``-share values.  For shares ``i`` and ``j != i`` the cross-domain
product ``x^i & y^j`` is blinded with a fresh mask ``r_{ij} = r_{ji}`` and
registered before recombination; the inner-domain product ``x^i & y^i`` may
be registered as well (it is in the paper's Kronecker delta tree, Fig. 3,
where the registered inner products ``a1, a2, d1, d2`` become the observable
probe extensions).

The first-order instance matches the paper's Fig. 1c:

    z^i = [x^i y^i] xor [x^i y^(i xor 1) xor r]
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import MaskingError
from repro.masking.randomness import MaskBus
from repro.netlist.builder import CircuitBuilder


def dom_and_mask_count(n_shares: int) -> int:
    """Fresh mask bits a DOM-indep AND needs: one per unordered share pair."""
    return n_shares * (n_shares - 1) // 2


def dom_and(
    builder: CircuitBuilder,
    x_shares: Sequence[int],
    y_shares: Sequence[int],
    masks: Dict[Tuple[int, int], int],
    name: str,
    register_inner: bool = True,
    register_cross: bool = True,
) -> List[int]:
    """Instantiate a DOM-indep AND gadget; returns the output share nets.

    ``masks`` maps unordered share pairs ``(i, j)`` with ``i < j`` to mask
    nets; reuse schemes pass the same net for several gadgets.  With
    ``register_inner`` the gadget is a full pipeline stage (1 cycle latency),
    matching the Kronecker delta construction of the paper.

    ``register_cross=False`` removes the registers around the blinded
    cross-domain products.  That configuration is *insecure under glitches*
    (the output cone then covers both domains' shares -- the Mangard et al.
    observation that motivated TI/DOM in the first place, see the paper's
    introduction); it exists for the E12 ablation benchmark.
    """
    n_shares = len(x_shares)
    if len(y_shares) != n_shares:
        raise MaskingError("x and y must have the same number of shares")
    if n_shares < 2:
        raise MaskingError("DOM needs at least two shares")
    expected = {(i, j) for i in range(n_shares) for j in range(i + 1, n_shares)}
    if set(masks) != expected:
        raise MaskingError(
            f"mask keys {sorted(masks)} do not match share pairs {sorted(expected)}"
        )

    outputs = []
    with builder.scope(name):
        for i in range(n_shares):
            terms = []
            inner = builder.and_(x_shares[i], y_shares[i], f"inner{i}")
            if register_inner:
                inner = builder.reg(inner, f"inner{i}$reg")
            terms.append(inner)
            for j in range(n_shares):
                if j == i:
                    continue
                pair = (min(i, j), max(i, j))
                cross = builder.and_(x_shares[i], y_shares[j], f"cross{i}{j}")
                blinded = builder.xor(cross, masks[pair], f"blind{i}{j}")
                if register_cross:
                    blinded = builder.reg(blinded, f"blind{i}{j}$reg")
                terms.append(blinded)
            outputs.append(builder.xor_reduce(terms, f"z{i}"))
    return outputs


def dom_and_first_order(
    builder: CircuitBuilder,
    x_shares: Sequence[int],
    y_shares: Sequence[int],
    mask: int,
    name: str,
    register_inner: bool = True,
) -> List[int]:
    """Convenience wrapper for the 2-share DOM-AND of the paper's Fig. 1c."""
    return dom_and(
        builder,
        x_shares,
        y_shares,
        {(0, 1): mask},
        name,
        register_inner=register_inner,
    )


def dom_masks_from_bus(
    bus: MaskBus, gate_name: str, n_shares: int
) -> Dict[Tuple[int, int], int]:
    """Allocate a full set of fresh masks for one gadget from a bus."""
    masks = {}
    for i in range(n_shares):
        for j in range(i + 1, n_shares):
            masks[(i, j)] = bus.fresh(f"{gate_name}.r{i}{j}")
    return masks
