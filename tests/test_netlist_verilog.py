"""Tests for the structural Verilog exporter."""

from repro.netlist.builder import CircuitBuilder
from repro.netlist.verilog import to_verilog


def build_example():
    b = CircuitBuilder("demo_top")
    x = b.input_bus("x", 2)
    g = b.and_(x[0], x[1], "g")
    q = b.reg(g, "state.q")
    m = b.mux(q, x[0], x[1], "m")
    b.output(m, "y")
    return b.build()


class TestVerilogExport:
    def test_module_header_and_ports(self):
        text = to_verilog(build_example())
        assert text.startswith("module demo_top (")
        assert "input clk;" in text
        assert "input x_0_;" in text
        assert "output y;" in text
        assert text.rstrip().endswith("endmodule")

    def test_register_becomes_always_block(self):
        text = to_verilog(build_example())
        assert "always @(posedge clk)" in text
        assert "state_q <= g;" in text
        assert "reg state_q;" in text

    def test_gates_are_primitives(self):
        text = to_verilog(build_example())
        assert "and g0 (g, x_0_, x_1_);" in text

    def test_mux_is_ternary_assign(self):
        text = to_verilog(build_example())
        assert "assign m = state_q ? x_1_ : x_0_;" in text

    def test_combinational_module_has_no_clock(self):
        b = CircuitBuilder("comb")
        a = b.input("a")
        b.output(b.not_(a), "y")
        text = to_verilog(b.build())
        assert "clk" not in text

    def test_constants_exported(self):
        b = CircuitBuilder("consts")
        a = b.input("a")
        b.output(b.and_(a, b.constant(1)), "y")
        text = to_verilog(b.build())
        assert "assign const1 = 1'b1;" in text

    def test_identifier_sanitisation(self):
        b = CircuitBuilder("san")
        a = b.input("weird[name].x")
        b.output(b.not_(a), "y")
        text = to_verilog(b.build())
        assert "weird_name__x" in text

    def test_duplicate_sanitised_names_disambiguated(self):
        b = CircuitBuilder("dup")
        a = b.input("a.b")
        c = b.input("a_b")
        b.output(b.and_(a, c), "y")
        text = to_verilog(b.build())
        assert "a_b" in text and "a_b__1" in text
