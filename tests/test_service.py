"""Tests for the evaluation service (store, queue, telemetry, HTTP, resume).

The end-to-end tests drive a real :class:`~repro.service.EvaluationService`
bound to an ephemeral port through plain ``urllib`` -- the same wire a curl
user or dashboard sees.  The E4-sized job (Kronecker delta, the paper's
Section III sweep) is small enough to finish in seconds yet goes through
the full campaign/checkpoint/verdict-cache machinery.
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
import zlib

import pytest

from repro.chaos import ChaosPolicy
from repro.errors import ServiceError
from repro.leakage.report import SCHEMA_VERSION
from repro.service import (
    EvaluationService,
    JobQueue,
    JobSpec,
    JobStore,
    QueueFull,
    Telemetry,
    canonical_key,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: E4-sized job: Kronecker delta under the glitch-extended model (the
#: paper's Section III table), reduced to a few-second sample budget.
E4_SPEC = {
    "design": "kronecker",
    "scheme": "eq6",
    "n_simulations": 20_000,
    "seed": 7,
}


def _post(url, body):
    request = urllib.request.Request(
        url,
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=120) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def _get(url):
    try:
        with urllib.request.urlopen(url, timeout=120) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def _request_with_headers(url, body=None):
    """Like ``_post``/``_get`` but also returns the response headers."""
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=120) as resp:
            return resp.status, resp.read(), resp.headers
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read(), exc.headers


class TestCanonicalKey:
    def test_invariant_under_dict_order(self):
        a = {"x": 1, "y": [1, 2], "z": "s"}
        b = {"z": "s", "y": [1, 2], "x": 1}
        assert canonical_key(a) == canonical_key(b)

    def test_distinct_params_distinct_keys(self):
        assert canonical_key({"n": 1}) != canonical_key({"n": 2})


class TestJobSpec:
    def test_execution_details_do_not_fragment_the_cache(self):
        base = JobSpec.from_dict(dict(E4_SPEC))
        variants = [
            dict(E4_SPEC, engine="bitsliced"),
            dict(E4_SPEC, workers=4),
            dict(E4_SPEC, chunk_size=1000),
        ]
        for variant in variants:
            spec = JobSpec.from_dict(variant)
            assert spec.cache_key("h") == base.cache_key("h")

    def test_semantic_params_change_the_key(self):
        base = JobSpec.from_dict(dict(E4_SPEC))
        for field, value in [
            ("n_simulations", 30_000),
            ("seed", 8),
            ("fixed_secret", 1),
            ("mode", "both"),
            ("model", "glitch-transition"),
        ]:
            spec = JobSpec.from_dict(dict(E4_SPEC, **{field: value}))
            assert spec.cache_key("h") != base.cache_key("h")
        assert base.cache_key("h1") != base.cache_key("h2")

    def test_rejects_unknown_fields_and_bad_values(self):
        with pytest.raises(ServiceError):
            JobSpec.from_dict(dict(E4_SPEC, bogus=1))
        with pytest.raises(ServiceError):
            JobSpec.from_dict(dict(E4_SPEC, n_simulations=0))
        with pytest.raises(ServiceError):
            JobSpec.from_dict(dict(E4_SPEC, mode="third"))
        with pytest.raises(ServiceError):
            JobSpec.from_dict(dict(E4_SPEC, engine="quantum"))
        with pytest.raises(ServiceError):
            JobSpec.from_dict("not a dict")


class TestJobStore:
    def test_records_survive_a_new_store_instance(self, tmp_path):
        store = JobStore(str(tmp_path))
        spec = JobSpec.from_dict(dict(E4_SPEC))
        record = store.new_job(spec, "k" * 64)
        store.update_job(record["job_id"], state="running")
        reloaded = JobStore(str(tmp_path))
        again = reloaded.get_job(record["job_id"])
        assert again["state"] == "running"
        assert again["spec"] == spec.to_dict()
        assert again["schema_version"] == SCHEMA_VERSION

    def test_result_cache_counts_hits_and_misses(self, tmp_path):
        store = JobStore(str(tmp_path))
        assert store.get_result("a" * 64) is None
        store.put_result("a" * 64, '{"x": 1}')
        assert store.get_result("a" * 64) == b'{"x": 1}'
        assert store.stats.hits == 1
        assert store.stats.misses == 1
        assert store.stats.to_dict()["hit_rate"] == 0.5

    def test_first_writer_wins(self, tmp_path):
        store = JobStore(str(tmp_path))
        store.put_result("b" * 64, '{"writer": "first"}')
        store.put_result("b" * 64, '{"writer": "second"}')
        assert store.read_result("b" * 64) == b'{"writer": "first"}'

    def test_recoverable_jobs(self, tmp_path):
        store = JobStore(str(tmp_path))
        spec = JobSpec.from_dict(dict(E4_SPEC))
        queued = store.new_job(spec, "c" * 64)
        running = store.new_job(spec, "d" * 64)
        done = store.new_job(spec, "e" * 64)
        store.update_job(running["job_id"], state="running")
        store.update_job(done["job_id"], state="done")
        ids = [r["job_id"] for r in store.recoverable_jobs()]
        assert ids == [queued["job_id"], running["job_id"]]


class TestJobQueue:
    def test_fifo_and_bounded(self):
        queue = JobQueue(maxsize=2)
        queue.put("a")
        queue.put("b")
        with pytest.raises(QueueFull):
            queue.put("c")
        assert queue.get() == "a"
        assert queue.get() == "b"
        assert queue.get(timeout=0.01) is None

    def test_close_wakes_getters(self):
        queue = JobQueue()
        queue.close()
        assert queue.get(timeout=5) is None  # returns immediately
        with pytest.raises(ServiceError):
            queue.put("x")


class TestTelemetry:
    def test_jsonl_events_and_counters(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with Telemetry(path) as telemetry:
            telemetry.emit("job_started", job_id="j1")
            telemetry.emit("cache_hit", job_id="j1", cache_key="k")
            telemetry.emit("uncounted_event", detail=1)
        lines = [json.loads(l) for l in open(path)]
        assert [e["event"] for e in lines] == [
            "job_started", "cache_hit", "uncounted_event",
        ]
        assert all("ts" in e for e in lines)

    def test_campaign_hook_stamps_job_id(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with Telemetry(path) as telemetry:
            hook = telemetry.campaign_hook("jobX")
            hook("chunk_done", {"blocks_done": 3})
        event = json.loads(open(path).read())
        assert event["job_id"] == "jobX"
        assert event["blocks_done"] == 3
        assert telemetry.counters()["chunk_done"] == 1


class TestVerdictStoreCorruption:
    """A rotted verdict record is a cache miss -- never a served report."""

    KEY = "f" * 64
    GOOD = json.dumps({"schema_version": SCHEMA_VERSION, "passed": True})

    def _store(self, tmp_path):
        events = []
        store = JobStore(
            str(tmp_path), hook=lambda event, payload: events.append(event)
        )
        return store, events

    def _assert_quarantined(self, store, events):
        assert store.get_result(self.KEY) is None
        assert store.stats.corruptions >= 1
        path = store._result_path(self.KEY)
        assert not os.path.exists(path)
        assert os.path.exists(path + ".corrupt")
        assert "store_corruption" in events

    def test_truncated_record_is_a_miss(self, tmp_path):
        store, events = self._store(tmp_path)
        store.put_result(self.KEY, self.GOOD)
        path = store._result_path(self.KEY)
        data = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(data[: len(data) // 2])
        self._assert_quarantined(store, events)

    def test_invalid_json_is_a_miss(self, tmp_path):
        store, events = self._store(tmp_path)
        store.put_result(self.KEY, self.GOOD)
        garbage = b'{"not a report":'
        with open(store._result_path(self.KEY), "wb") as handle:
            handle.write(garbage)
        # keep the sidecar consistent so the *JSON* check is what fires
        with open(store._crc_path(self.KEY), "w") as handle:
            handle.write(f"{zlib.crc32(garbage) & 0xFFFFFFFF:08x}\n")
        self._assert_quarantined(store, events)

    def test_flipped_byte_fails_the_checksum(self, tmp_path):
        store, events = self._store(tmp_path)
        store.put_result(self.KEY, self.GOOD)
        path = store._result_path(self.KEY)
        data = bytearray(open(path, "rb").read())
        data[-2] ^= 0x01  # same length, still may parse -- CRC catches it
        with open(path, "wb") as handle:
            handle.write(bytes(data))
        self._assert_quarantined(store, events)

    def test_future_schema_version_is_a_miss(self, tmp_path):
        store, events = self._store(tmp_path)
        store.put_result(
            self.KEY,
            json.dumps({"schema_version": SCHEMA_VERSION + 7}),
        )
        self._assert_quarantined(store, events)

    def test_legacy_record_without_sidecar_is_served(self, tmp_path):
        store, _ = self._store(tmp_path)
        with open(store._result_path(self.KEY), "w") as handle:
            handle.write(self.GOOD)
        assert store.get_result(self.KEY) == self.GOOD.encode()

    def test_quarantine_clears_the_path_for_recompute(self, tmp_path):
        store, events = self._store(tmp_path)
        store.put_result(self.KEY, self.GOOD)
        with open(store._result_path(self.KEY), "wb") as handle:
            handle.write(b"rot")
        assert store.get_result(self.KEY) is None
        # first-writer-wins does not resurrect the quarantined bytes: the
        # slot is free again and a recomputed verdict repopulates it.
        store.put_result(self.KEY, self.GOOD)
        assert store.get_result(self.KEY) == self.GOOD.encode()


@pytest.fixture
def service(tmp_path):
    svc = EvaluationService(str(tmp_path / "state"), port=0)
    svc.start()
    yield svc
    svc.stop()


class TestServiceEndToEnd:
    def test_resubmission_is_a_byte_identical_cache_hit(self, service):
        base = service.address
        status, body = _post(f"{base}/v1/jobs", E4_SPEC)
        assert status == 201
        first = json.loads(body)
        assert first["state"] == "queued"
        assert first["cached"] is False

        status, body = _get(f"{base}/v1/jobs/{first['job_id']}?wait=60")
        assert status == 200
        finished = json.loads(body)
        assert finished["state"] == "done"
        assert finished["result"]["passed"] is False  # eq6 leaks
        assert finished["result"]["exit_code"] == 1

        status, report1 = _get(f"{base}/v1/jobs/{first['job_id']}/report")
        assert status == 200
        parsed = json.loads(report1)
        assert parsed["schema_version"] == SCHEMA_VERSION

        # Second identical submission: answered from the verdict cache,
        # no simulation, terminal state straight away.
        status, body = _post(f"{base}/v1/jobs", E4_SPEC)
        assert status == 200
        second = json.loads(body)
        assert second["cached"] is True
        assert second["state"] == "done"
        assert second["job_id"] != first["job_id"]
        assert second["cache_key"] == first["cache_key"]

        status, report2 = _get(f"{base}/v1/jobs/{second['job_id']}/report")
        assert status == 200
        assert report2 == report1  # byte-identical

        # The hit is visible in /metrics and in the telemetry log.
        status, body = _get(f"{base}/v1/metrics")
        metrics = json.loads(body)
        assert metrics["cache"]["hits"] == 1
        assert metrics["counters"]["cache_hit"] == 1
        assert metrics["counters"]["cache_miss"] == 1
        assert metrics["jobs"]["done"] == 2
        events = [
            json.loads(line) for line in open(service.telemetry.path)
        ]
        hits = [e for e in events if e["event"] == "cache_hit"]
        assert len(hits) == 1
        assert hits[0]["job_id"] == second["job_id"]

    def test_execution_details_share_the_verdict(self, service):
        base = service.address
        status, body = _post(f"{base}/v1/jobs", E4_SPEC)
        assert status == 201
        job_id = json.loads(body)["job_id"]
        status, body = _get(f"{base}/v1/jobs/{job_id}?wait=60")
        assert json.loads(body)["state"] == "done"
        # same semantics, different engine: still a cache hit
        status, body = _post(
            f"{base}/v1/jobs", dict(E4_SPEC, engine="bitsliced", workers=2)
        )
        assert status == 200
        assert json.loads(body)["cached"] is True

    def test_identical_inflight_submissions_deduplicate(self, service):
        base = service.address
        spec = dict(E4_SPEC, n_simulations=200_000, seed=21)
        status, body = _post(f"{base}/v1/jobs", spec)
        assert status == 201
        first = json.loads(body)
        status, body = _post(f"{base}/v1/jobs", spec)
        assert status == 200
        second = json.loads(body)
        assert second["deduplicated"] is True
        assert second["job_id"] == first["job_id"]
        status, body = _get(f"{base}/v1/jobs/{first['job_id']}?wait=120")
        assert json.loads(body)["state"] == "done"

    def test_health_metrics_and_errors(self, service):
        base = service.address
        status, body = _get(f"{base}/v1/healthz")
        assert status == 200
        assert json.loads(body)["ok"] is True

        status, body = _get(f"{base}/v1/metrics")
        assert status == 200
        metrics = json.loads(body)
        assert metrics["schema_version"] == SCHEMA_VERSION
        assert "queue_depth" in metrics and "busy_workers" in metrics

        status, body = _post(f"{base}/v1/jobs", {"design": "warp-core"})
        assert status == 400
        assert "unknown design" in json.loads(body)["error"]

        status, body = _post(f"{base}/v1/jobs", dict(E4_SPEC, bogus=1))
        assert status == 400

        status, _ = _get(f"{base}/v1/jobs/no-such-job")
        assert status == 404
        status, _ = _get(f"{base}/no/such/route")
        assert status == 404

        # report of an unfinished job is a 409, not a 500
        spec = dict(E4_SPEC, n_simulations=400_000, seed=33)
        status, body = _post(f"{base}/v1/jobs", spec)
        job_id = json.loads(body)["job_id"]
        status, body = _get(f"{base}/v1/jobs/{job_id}/report")
        assert status == 409
        _get(f"{base}/v1/jobs/{job_id}?wait=120")


class TestWaitParameterValidation:
    """``?wait=`` is validated and bounded, never trusted."""

    @pytest.mark.parametrize(
        "wait", ["-1", "-0.5", "nan", "inf", "-inf", "1e9", "5000", "bogus"]
    )
    def test_invalid_wait_is_400(self, service, wait):
        base = service.address
        status, body = _post(f"{base}/v1/jobs", E4_SPEC)
        job_id = json.loads(body)["job_id"]
        status, body = _get(f"{base}/v1/jobs/{job_id}?wait={wait}")
        assert status == 400
        assert "wait" in json.loads(body)["error"]
        # the job itself is untouched by the bad polls
        status, _ = _get(f"{base}/v1/jobs/{job_id}?wait=60")
        assert status == 200

    def test_wait_between_max_poll_and_absurd_is_clamped(self, service):
        base = service.address
        status, body = _post(f"{base}/v1/jobs", E4_SPEC)
        job_id = json.loads(body)["job_id"]
        _get(f"{base}/v1/jobs/{job_id}?wait=60")
        # 3600 is within the accepted range; it clamps to the documented
        # 60s long-poll maximum instead of holding the handler for an hour
        # (terminal job, so this answers immediately either way).
        started = time.monotonic()
        status, body = _get(f"{base}/v1/jobs/{job_id}?wait=3600")
        assert status == 200
        assert json.loads(body)["state"] == "done"
        assert time.monotonic() - started < 60


class TestCorruptVerdictOverHttp:
    def test_corrupt_cached_verdict_is_410_and_recomputable(self, service):
        base = service.address
        status, body = _post(f"{base}/v1/jobs", E4_SPEC)
        assert status == 201
        first = json.loads(body)
        status, body = _get(f"{base}/v1/jobs/{first['job_id']}?wait=60")
        assert json.loads(body)["state"] == "done"

        # Rot the cached verdict on disk behind the store's back.
        result_path = service.store._result_path(first["cache_key"])
        with open(result_path, "wb") as handle:
            handle.write(b'{"passed": true, "forged": ')

        # Serving must fail loudly -- 410 with a resubmit hint -- and
        # must never return the rotted bytes as a report.
        status, body = _get(f"{base}/v1/jobs/{first['job_id']}/report")
        assert status == 410
        error = json.loads(body)
        assert "resubmit" in error["error"]
        assert os.path.exists(result_path + ".corrupt")

        # Resubmission is a clean miss that recomputes the verdict...
        status, body = _post(f"{base}/v1/jobs", E4_SPEC)
        assert status == 201
        second = json.loads(body)
        assert second["cached"] is False
        status, body = _get(f"{base}/v1/jobs/{second['job_id']}?wait=60")
        assert json.loads(body)["state"] == "done"
        # ...after which the report serves again, self-healed.
        status, body = _get(f"{base}/v1/jobs/{second['job_id']}/report")
        assert status == 200
        assert json.loads(body)["schema_version"] == SCHEMA_VERSION

        status, body = _get(f"{base}/v1/metrics")
        metrics = json.loads(body)
        assert metrics["cache"]["corruptions"] >= 1
        assert metrics["counters"]["store_corruption"] >= 1


class TestWatchdogDeadLetter:
    def test_stalled_job_restarts_then_dead_letters(self, tmp_path):
        # Chaos hangs every chunk boundary for far longer than the
        # watchdog's silence deadline, so every attempt stalls: the job is
        # restarted once, stalls again, and is dead-lettered.
        plane = ChaosPolicy(
            seed=0,
            p=1.0,
            sites=("runner.chunk",),
            max_faults=None,
            hang_seconds=1.2,
        ).fault_plane()
        svc = EvaluationService(
            str(tmp_path / "state"),
            port=0,
            stall_timeout=0.3,
            max_restarts=1,
            fault_plane=plane,
        )
        svc.start()
        try:
            spec = dict(E4_SPEC, chunk_size=4_096)
            status, body = _post(f"{svc.address}/v1/jobs", spec)
            assert status == 201
            job_id = json.loads(body)["job_id"]
            deadline = time.monotonic() + 60
            while True:
                status, body = _get(f"{svc.address}/v1/jobs/{job_id}?wait=5")
                record = json.loads(body)
                if record["state"] not in ("queued", "running"):
                    break
                assert time.monotonic() < deadline, "job never terminated"
            assert record["state"] == "dead_letter"
            assert record["restarts"] > 1
            assert "dead-lettered" in record["error"]

            status, body = _get(f"{svc.address}/v1/metrics")
            metrics = json.loads(body)
            assert metrics["jobs"]["dead_letter"] == 1
            assert metrics["counters"]["watchdog_stalled"] >= 2
            assert metrics["counters"]["job_restarted"] == 1
            assert metrics["counters"]["job_dead_letter"] == 1
            assert metrics["watchdog"]["stall_timeout"] == 0.3
            assert metrics["watchdog"]["max_restarts"] == 1

            # a dead-lettered job never populated the verdict cache
            status, _ = _get(f"{svc.address}/v1/jobs/{job_id}/report")
            assert status == 409
        finally:
            svc.stop()


class TestApiVersioning:
    """The ``/v1/`` prefix and the retirement of unversioned aliases."""

    def test_full_job_lifecycle_under_v1(self, service):
        base = service.address
        status, body = _post(f"{base}/v1/jobs", E4_SPEC)
        assert status == 201
        job_id = json.loads(body)["job_id"]
        status, body = _get(f"{base}/v1/jobs/{job_id}?wait=60")
        assert status == 200
        assert json.loads(body)["state"] == "done"
        status, body = _get(f"{base}/v1/jobs/{job_id}/report")
        assert status == 200
        assert json.loads(body)["schema_version"] == SCHEMA_VERSION

    def test_v1_health_and_metrics_announce_the_version(self, service):
        base = service.address
        status, body = _get(f"{base}/v1/healthz")
        assert status == 200
        health = json.loads(body)
        assert health["ok"] is True
        assert health["api_version"] == "v1"
        status, body = _get(f"{base}/v1/metrics")
        assert status == 200
        assert json.loads(body)["api_version"] == "v1"

    def test_v1_responses_carry_no_deprecation_header(self, service):
        status, _, headers = _request_with_headers(
            f"{service.address}/v1/healthz"
        )
        assert status == 200
        assert headers.get("Deprecation") is None
        assert headers.get("Link") is None

    def test_retired_aliases_answer_404_with_successor_link(self, service):
        base = service.address
        for path in ("/healthz", "/metrics"):
            status, body, headers = _request_with_headers(f"{base}{path}")
            assert status == 404
            assert headers.get("Link") == (
                f'</v1{path}>; rel="successor-version"'
            )
            assert json.loads(body)["successor"] == f"/v1{path}"

    def test_retired_job_submission_answers_404_with_link(self, service):
        base = service.address
        status, body, headers = _request_with_headers(
            f"{base}/jobs", body=E4_SPEC
        )
        assert status == 404
        assert '</v1/jobs>; rel="successor-version"' == headers.get("Link")
        # The job was NOT admitted -- the retired path is inert.
        status, body = _get(f"{base}/v1/jobs")
        assert status == 200

    def test_adaptive_job_over_the_wire(self, service):
        base = service.address
        spec = dict(E4_SPEC, adaptive=True)
        status, body = _post(f"{base}/v1/jobs", spec)
        assert status == 201
        first = json.loads(body)
        assert first["cached"] is False  # distinct cache key vs uniform
        status, body = _get(f"{base}/v1/jobs/{first['job_id']}?wait=60")
        finished = json.loads(body)
        assert finished["state"] == "done"
        assert finished["result"]["passed"] is False  # same verdict: leaks
        status, body = _get(f"{base}/v1/jobs/{first['job_id']}/report")
        report = json.loads(body)
        adaptive = report["adaptive"]
        assert adaptive["undecided"] == 0
        assert adaptive["decided_leaky"] > 0
        assert adaptive["probe_sample_savings"] > 1.0

    def test_unknown_version_prefix_is_404(self, service):
        status, _ = _get(f"{service.address}/v2/healthz")
        assert status == 404


class TestRestartResume:
    def test_graceful_shutdown_returns_job_to_queue_and_resumes(
        self, tmp_path
    ):
        state = str(tmp_path / "state")
        svc = EvaluationService(state, port=0)
        svc.start()
        spec = {
            "design": "kronecker",
            "scheme": "full",
            "n_simulations": 400_000,
            "seed": 11,
            "chunk_size": 8_192,
        }
        status, body = _post(f"{svc.address}/v1/jobs", spec)
        assert status == 201
        job_id = json.loads(body)["job_id"]
        checkpoint = svc.store.checkpoint_path(job_id)
        deadline = time.monotonic() + 60
        while not os.path.exists(checkpoint):
            assert time.monotonic() < deadline, "no checkpoint appeared"
            time.sleep(0.05)
        svc.stop()

        # The durable image says "resume me": still queued, checkpoint kept.
        record = json.loads(
            open(os.path.join(state, "jobs", f"{job_id}.json")).read()
        )
        assert record["state"] == "queued"
        assert record["progress"]["blocks_done"] > 0
        assert os.path.exists(checkpoint)

        svc2 = EvaluationService(state, port=0)
        recovered = svc2.start()
        assert recovered == 1
        status, body = _get(f"{svc2.address}/v1/jobs/{job_id}?wait=120")
        finished = json.loads(body)
        svc2.stop()
        assert finished["state"] == "done"
        assert finished["result"]["exit_code"] == 0  # full scheme is clean
        # The resumed campaign started from the checkpoint, not block 0.
        assert finished["progress"]["resumed_from_block"] > 0
        events = [json.loads(line) for line in open(svc2.telemetry.path)]
        names = [e["event"] for e in events]
        assert "job_interrupted" in names
        assert "job_recovered" in names

    def test_sigkilled_server_resumes_after_restart(self, tmp_path):
        """A real SIGKILL mid-job: the restarted server finishes the job."""
        state = str(tmp_path / "state")
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            os.path.join(REPO_ROOT, "src")
            + os.pathsep
            + env.get("PYTHONPATH", "")
        )
        argv = [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", "0", "--state-dir", state,
        ]
        proc = subprocess.Popen(
            argv, env=env, stdout=subprocess.PIPE, text=True
        )
        try:
            line = proc.stdout.readline()
            assert "listening on" in line
            base = line.strip().rsplit(" ", 1)[1]
            spec = {
                "design": "kronecker",
                "scheme": "full",
                "n_simulations": 400_000,
                "seed": 13,
                "chunk_size": 8_192,
            }
            status, body = _post(f"{base}/v1/jobs", spec)
            assert status == 201
            job_id = json.loads(body)["job_id"]
            # Wait for the job's real checkpoint (not a .tmp in flight):
            # killing before the first atomic rename would legitimately
            # restart the campaign from block 0.
            checkpoint = os.path.join(
                state, "checkpoints", f"{job_id}.npz"
            )
            deadline = time.monotonic() + 60
            while not os.path.exists(checkpoint):
                assert time.monotonic() < deadline, "no checkpoint appeared"
                time.sleep(0.05)
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
            proc.stdout.close()

        # Restart in-process on the same state dir; the killed job record
        # is still "running" on disk and must be recovered and finished.
        record = json.loads(
            open(os.path.join(state, "jobs", f"{job_id}.json")).read()
        )
        assert record["state"] == "running"
        svc = EvaluationService(state, port=0)
        recovered = svc.start()
        assert recovered == 1
        status, body = _get(f"{svc.address}/v1/jobs/{job_id}?wait=120")
        finished = json.loads(body)
        svc.stop()
        assert finished["state"] == "done"
        assert finished["progress"]["resumed_from_block"] > 0
