"""Cross-validation between the independent analysis engines.

The exact enumerator, the Monte-Carlo evaluator and the symbolic ANF
machinery are three separate implementations of the same semantics; these
tests pin them against each other on the paper's central object.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.rootcause import v1_observation_anf
from repro.analysis.walsh import joint_distribution
from repro.core.kronecker import build_kronecker_delta
from repro.core.optimizations import RandomnessScheme
from repro.leakage.evaluator import LeakageEvaluator
from repro.leakage.exact import ExactAnalyzer
from repro.leakage.gtest import g_test
from repro.leakage.model import ProbingModel


class TestExactVsSymbolic:
    def test_v1_distribution_matches_anf_enumeration(self):
        """The exact engine's v1 verdict agrees with the ANF computation.

        Both enumerate the same randomness; one walks the netlist
        bitsliced, the other evaluates recovered polynomials.
        """
        scheme = RandomnessScheme.FIRST_LAYER_R1R3
        observation = v1_observation_anf(scheme)
        fixed = {f"X{i}": 0 for i in range(8)}
        dist_zero = joint_distribution(observation, fixed)
        fixed_a = dict(fixed, X1=1, X5=1)
        dist_ones = joint_distribution(observation, fixed_a)
        anf_says_leak = dist_zero != dist_ones

        design = build_kronecker_delta(scheme)
        analyzer = ExactAnalyzer(design.dut)
        pc = analyzer.probe_class_for_net(design.v_nodes["v1"])
        exact_says_leak = analyzer.analyze_probe_class(pc).leaking
        assert anf_says_leak == exact_says_leak is True

    def test_secure_scheme_agrees_too(self):
        scheme = RandomnessScheme.PROPOSED_EQ9
        observation = v1_observation_anf(scheme)
        fixed = {f"X{i}": 0 for i in range(8)}
        dist_zero = joint_distribution(observation, fixed)
        dist_ones = joint_distribution(
            observation, dict(fixed, X1=1, X5=1)
        )
        assert dist_zero == dist_ones
        design = build_kronecker_delta(scheme)
        analyzer = ExactAnalyzer(design.dut)
        pc = analyzer.probe_class_for_net(design.v_nodes["v1"])
        assert not analyzer.analyze_probe_class(pc).leaking


class TestExactVsMonteCarlo:
    def test_sampled_verdicts_match_exact_on_v_nodes(self):
        for scheme, expect_leak in [
            (RandomnessScheme.DEMEYER_EQ6, True),
            (RandomnessScheme.FULL, False),
        ]:
            design = build_kronecker_delta(scheme)
            evaluator = LeakageEvaluator(
                design.dut, ProbingModel.GLITCH, seed=3
            )
            pc = evaluator.probe_class_for_net(design.v_nodes["v1"])
            report = evaluator.evaluate(
                fixed_secret=0,
                n_simulations=40_000,
                probe_classes=[pc],
            )
            assert report.results[0].leaking == expect_leak


class TestGTestProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.integers(2, 8))
    def test_group_symmetry(self, seed, n_categories):
        """Swapping the two groups leaves G and p unchanged."""
        rng = np.random.default_rng(seed)
        a = rng.integers(0, n_categories, size=3000).astype(np.uint64)
        b = rng.integers(0, n_categories, size=2500).astype(np.uint64)
        forward = g_test(a, b)
        backward = g_test(b, a)
        assert forward.g_statistic == pytest.approx(backward.g_statistic)
        assert forward.mlog10p == pytest.approx(backward.mlog10p)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_relabeling_invariance(self, seed):
        """The test depends only on the histogram, not on key values."""
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 4, size=2000).astype(np.uint64)
        b = rng.integers(0, 4, size=2000).astype(np.uint64)
        direct = g_test(a, b)
        relabeled = g_test(a * np.uint64(977), b * np.uint64(977))
        assert direct.g_statistic == pytest.approx(relabeled.g_statistic)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_g_nonnegative(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 6, size=1000).astype(np.uint64)
        b = rng.integers(0, 6, size=1000).astype(np.uint64)
        assert g_test(a, b).g_statistic >= 0.0
