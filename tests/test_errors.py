"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    BudgetExceeded,
    CheckpointError,
    ExactAnalysisInfeasible,
    FieldError,
    MaskingError,
    NetlistError,
    ReproError,
    SimulationError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            NetlistError,
            SimulationError,
            FieldError,
            MaskingError,
            ExactAnalysisInfeasible,
            CheckpointError,
            BudgetExceeded,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_repro_error_is_exception(self):
        assert issubclass(ReproError, Exception)

    def test_catching_specific_type(self):
        with pytest.raises(ExactAnalysisInfeasible):
            raise ExactAnalysisInfeasible("budget exceeded")


class TestPublicEntryPointsRaiseReproErrors:
    """Bad input to public APIs must surface as ReproError subclasses.

    Callers (the CLI maps ReproError to exit code 2) rely on never seeing a
    bare ValueError/KeyError from configuration mistakes.
    """

    def test_evaluator_rejects_bad_observation(self, kronecker_full):
        from repro.leakage.evaluator import LeakageEvaluator

        with pytest.raises(ReproError):
            LeakageEvaluator(kronecker_full.dut, observation="power")
        with pytest.raises(ReproError):
            LeakageEvaluator(kronecker_full.dut, block_lanes=100)

    def test_evaluate_rejects_bad_budgets(self, kronecker_full):
        from repro.leakage.evaluator import LeakageEvaluator

        evaluator = LeakageEvaluator(kronecker_full.dut)
        with pytest.raises(ReproError):
            evaluator.evaluate(n_simulations=0)
        with pytest.raises(ReproError):
            evaluator.evaluate(n_simulations=10, n_windows=20)

    def test_campaign_config_rejects_bad_values(self):
        from repro.leakage.campaign import CampaignConfig

        with pytest.raises(ReproError):
            CampaignConfig(n_simulations=1000, mode="bogus")
        with pytest.raises(ReproError):
            CampaignConfig(n_simulations=1000, chunk_size=-1)

    def test_campaign_quarantines_corrupt_checkpoint(
        self, kronecker_full, tmp_path
    ):
        """Integrity failures never abort a resume: the rotten file is
        quarantined (``.corrupt``) and the run restarts cleanly.  Only
        configuration mismatches raise :class:`CheckpointError`."""
        from repro.leakage.campaign import CampaignConfig, EvaluationCampaign
        from repro.leakage.evaluator import LeakageEvaluator

        path = tmp_path / "broken.npz"
        path.write_bytes(b"\x00garbage")
        campaign = EvaluationCampaign(
            LeakageEvaluator(kronecker_full.dut),
            CampaignConfig(n_simulations=1_000, checkpoint=str(path)),
        )
        report = campaign.run(resume=True)
        assert report.status == "complete"
        assert campaign.progress.resumed_from_block == 0
        assert (tmp_path / "broken.npz.corrupt").exists()

    def test_netlist_mutations_reject_bad_nets(self, kronecker_full):
        from repro.netlist.mutate import rewire_fanin, stuck_net

        netlist = kronecker_full.dut.netlist
        with pytest.raises(NetlistError):
            rewire_fanin(netlist, -1, 0)
        with pytest.raises(NetlistError):
            stuck_net(netlist, 0, 7)

    def test_dut_protocol_validation(self, kronecker_full):
        from repro.leakage.dut import DesignUnderTest

        with pytest.raises(SimulationError):
            DesignUnderTest(
                netlist=kronecker_full.dut.netlist,
                share_buses=[[10**6]],
            )
