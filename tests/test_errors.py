"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    ExactAnalysisInfeasible,
    FieldError,
    MaskingError,
    NetlistError,
    ReproError,
    SimulationError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            NetlistError,
            SimulationError,
            FieldError,
            MaskingError,
            ExactAnalysisInfeasible,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_repro_error_is_exception(self):
        assert issubclass(ReproError, Exception)

    def test_catching_specific_type(self):
        with pytest.raises(ExactAnalysisInfeasible):
            raise ExactAnalysisInfeasible("budget exceeded")
