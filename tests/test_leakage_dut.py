"""Tests for the design-under-test protocol."""

import pytest

from repro.errors import SimulationError
from repro.leakage.dut import DesignUnderTest
from repro.netlist.builder import CircuitBuilder


def make_parts():
    b = CircuitBuilder("t")
    s0 = b.input_bus("s0", 4)
    s1 = b.input_bus("s1", 4)
    m = b.input("m")
    out = b.xor(s0[0], s1[0])
    b.output(out, "y")
    return b.build(), s0, s1, m


class TestProtocolValidation:
    def test_valid_protocol(self):
        nl, s0, s1, m = make_parts()
        dut = DesignUnderTest(
            netlist=nl, share_buses=[s0, s1], mask_bits=[m], latency=0
        )
        assert dut.n_shares == 2
        assert dut.secret_width == 4
        assert dut.n_fresh_mask_bits == 1

    def test_unassigned_input_rejected(self):
        nl, s0, s1, m = make_parts()
        with pytest.raises(SimulationError):
            DesignUnderTest(netlist=nl, share_buses=[s0, s1], latency=0)

    def test_non_input_net_rejected(self):
        nl, s0, s1, m = make_parts()
        internal = nl.net("y")
        with pytest.raises(SimulationError):
            DesignUnderTest(
                netlist=nl,
                share_buses=[s0, s1],
                mask_bits=[m, internal],
                latency=0,
            )

    def test_share_bit_lookup(self):
        nl, s0, s1, m = make_parts()
        dut = DesignUnderTest(
            netlist=nl, share_buses=[s0, s1], mask_bits=[m], latency=0
        )
        assert dut.share_bit(0, 2) == s0[2]
        assert dut.share_bit(1, 0) == s1[0]

    def test_describe_mentions_costs(self):
        nl, s0, s1, m = make_parts()
        dut = DesignUnderTest(
            netlist=nl, share_buses=[s0, s1], mask_bits=[m], latency=3
        )
        text = dut.describe()
        assert "2 shares" in text
        assert "1 fresh mask" in text
        assert "latency 3" in text
