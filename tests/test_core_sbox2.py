"""Tests for the second-order (3-share) masked AES S-box."""

import random

import pytest

from repro.aes.sbox import sbox
from repro.core.optimizations import RandomnessScheme, SecondOrderScheme
from repro.core.sbox2 import SBOX2_LATENCY, build_masked_sbox_second_order
from repro.errors import MaskingError
from repro.netlist.simulate import ScalarSimulator


@pytest.fixture(scope="module")
def design():
    return build_masked_sbox_second_order(SecondOrderScheme.FULL_21)


def run_sbox2(design, x, rng, warmup=11):
    dut = design.dut
    sim = ScalarSimulator(design.netlist)
    values = None
    for _ in range(warmup):
        s0, s1 = rng.randrange(256), rng.randrange(256)
        assignment = {}
        for i in range(8):
            assignment[dut.share_buses[0][i]] = (s0 >> i) & 1
            assignment[dut.share_buses[1][i]] = (s1 >> i) & 1
            assignment[dut.share_buses[2][i]] = ((s0 ^ s1 ^ x) >> i) & 1
        for net in dut.mask_bits:
            assignment[net] = rng.randrange(2)
        for bus in dut.nonzero_byte_buses:
            value = rng.randrange(1, 256)
            for i in range(8):
                assignment[bus[i]] = (value >> i) & 1
        for bus in dut.uniform_byte_buses:
            value = rng.randrange(256)
            for i in range(8):
                assignment[bus[i]] = (value >> i) & 1
        values = sim.step(assignment)
    out = 0
    for i in range(8):
        bit = 0
        for share_bus in design.output_shares:
            bit ^= values[share_bus[i]]
        out |= bit << i
    return out


class TestFunctional:
    def test_all_byte_values_sampled(self, design):
        rng = random.Random(0)
        for x in (0, 1, 2, 0x53, 0x80, 0xAA, 0xFE, 0xFF):
            assert run_sbox2(design, x, rng) == sbox(x)

    def test_opt13_scheme_same_function(self):
        design = build_masked_sbox_second_order(SecondOrderScheme.OPT_13)
        rng = random.Random(1)
        for x in (0, 0x37, 0xFF):
            assert run_sbox2(design, x, rng, warmup=13) == sbox(x)

    def test_zero_input_protected(self, design):
        """The Kronecker zero-mapping works at second order too."""
        rng = random.Random(2)
        for _ in range(3):
            assert run_sbox2(design, 0, rng) == 0x63


class TestStructure:
    def test_latency(self, design):
        assert design.latency == SBOX2_LATENCY == 7

    def test_three_shares_everywhere(self, design):
        assert design.dut.n_shares == 3
        assert len(design.output_shares) == 3

    def test_mask_budget(self, design):
        # Kronecker FULL_21 plus two non-zero and two uniform mask bytes.
        assert design.dut.n_fresh_mask_bits == 21
        assert len(design.dut.nonzero_byte_buses) == 2
        assert len(design.dut.uniform_byte_buses) == 2

    def test_first_order_scheme_rejected(self):
        with pytest.raises(MaskingError):
            build_masked_sbox_second_order(RandomnessScheme.FULL)

    def test_size_scales_with_order(self, design):
        from repro.core.sbox import build_masked_sbox

        first_order = build_masked_sbox(RandomnessScheme.FULL)
        assert len(design.netlist.cells) > len(first_order.netlist.cells)
