"""Tests for :mod:`repro.spec` -- the unified evaluation parameter surface.

The load-bearing property is cache-key stability: for non-adaptive specs
the canonical cache identity must be byte-for-byte the dict the service
hashed before ``EvaluationSpec`` existed, so verdict caches populated by
earlier versions keep answering.  The golden digests below were computed
against that earlier implementation and must never change.
"""

import argparse

import pytest

from repro.errors import ServiceError, SpecError
from repro.spec import (
    API_VERSION,
    DEFAULT_CHUNK_SIZE,
    EvaluationSpec,
    canonical_key,
)

#: Golden cache keys computed by the pre-EvaluationSpec service code
#: (netlist hash "deadbeef").  A change here silently invalidates every
#: existing verdict cache -- treat any mismatch as a regression.
GOLDEN_KEYS = {
    "e4": (
        {"design": "kronecker", "scheme": "eq6",
         "n_simulations": 20_000, "seed": 7},
        "39a5a53fd7101ed88bebd172bc7593145ea8ceea2ab7531126938d3812d7cf43",
    ),
    "default": (
        {},
        "c72318605e8d760270e7e9fe3aea2fe168ad381233e0aa5a47740af2c625ed86",
    ),
    "pairs": (
        {"design": "sbox", "scheme": "eq9", "mode": "both",
         "max_pairs": 100, "pair_offsets": [0, 1], "n_windows": 2,
         "threshold": 7.5, "fixed_secret": 3},
        "25c6e1980dd919b440e8d54c13ccc8a71b8808bb5824b365a98a06ce44ec3a06",
    ),
}


class TestRoundTrip:
    def test_to_dict_from_dict_is_identity(self):
        spec = EvaluationSpec.from_dict(
            {"design": "sbox", "scheme": "eq6", "mode": "both",
             "pair_offsets": [0, 1], "adaptive": True,
             "decide_threshold": 6.0, "max_budget_factor": 2.0}
        )
        again = EvaluationSpec.from_dict(spec.to_dict())
        assert again == spec

    def test_to_dict_is_json_safe(self):
        import json

        spec = EvaluationSpec(pair_offsets=(0, 1))
        parsed = json.loads(json.dumps(spec.to_dict()))
        assert EvaluationSpec.from_dict(parsed) == spec

    def test_pair_offsets_coerced_to_tuple(self):
        spec = EvaluationSpec.from_dict({"pair_offsets": [0, 2]})
        assert spec.pair_offsets == (0, 2)


class TestGoldenCacheKeys:
    @pytest.mark.parametrize("name", sorted(GOLDEN_KEYS))
    def test_non_adaptive_keys_match_pre_spec_service(self, name):
        payload, digest = GOLDEN_KEYS[name]
        spec = EvaluationSpec.from_dict(dict(payload))
        assert spec.cache_key("deadbeef") == digest

    def test_execution_fields_do_not_fragment(self):
        base = EvaluationSpec()
        for variant in (
            EvaluationSpec(engine="bitsliced"),
            EvaluationSpec(workers=16),
            EvaluationSpec(chunk_size=4_096),
        ):
            assert variant.cache_key("x") == base.cache_key("x")

    def test_adaptive_defaults_do_not_fragment_when_off(self):
        # An adaptive=False spec hashes identically no matter what the
        # (inert) scheduler knobs say.
        base = EvaluationSpec()
        tweaked = EvaluationSpec(decide_threshold=9.0, decide_chunks=5)
        assert tweaked.cache_key("x") == base.cache_key("x")
        assert "adaptive" not in base.cache_params("x")

    def test_adaptive_on_changes_the_key(self):
        base = EvaluationSpec()
        on = EvaluationSpec(adaptive=True)
        assert on.cache_key("x") != base.cache_key("x")
        assert on.cache_params("x")["adaptive"]["decide_threshold"] == 5.0
        # ... and each scheduler knob is semantic once adaptive is on.
        assert (
            EvaluationSpec(adaptive=True, decide_chunks=3).cache_key("x")
            != on.cache_key("x")
        )

    def test_canonical_key_order_invariant(self):
        assert canonical_key({"a": 1, "b": 2}) == canonical_key(
            {"b": 2, "a": 1}
        )


class TestValidation:
    @pytest.mark.parametrize(
        "payload",
        [
            {"bogus": 1},
            {"n_simulations": 0},
            {"mode": "third"},
            {"engine": "quantum"},
            {"model": "power"},
            {"adaptive": "yes"},
            {"decide_threshold": 0.0},
            {"null_threshold": 9.0},  # exceeds decide_threshold default
            {"decide_chunks": 0},
            {"min_null_samples": 0},
            {"max_budget_factor": 0.5},
            {"pair_offsets": "zero"},
        ],
    )
    def test_rejects_bad_specs(self, payload):
        with pytest.raises(SpecError):
            EvaluationSpec.from_dict(payload)

    def test_spec_error_is_a_service_error(self):
        # HTTP 400 mapping and CLI error handling catch ServiceError.
        with pytest.raises(ServiceError):
            EvaluationSpec.from_dict({"mode": "third"})

    def test_not_a_dict(self):
        with pytest.raises(SpecError):
            EvaluationSpec.from_dict("not a dict")


class TestFromArgs:
    def _namespace(self, **overrides):
        ns = argparse.Namespace(
            design="kronecker", scheme="eq6", transitions=False,
            simulations=10_000, windows=1, fixed=0, pairs=False,
            batch_probes=False, max_pairs=500, pair_seed=None, seed=3,
            engine="compiled", workers=1, chunk_size=None, adaptive=False,
            decide_threshold=5.0, null_threshold=4.0, decide_chunks=2,
            min_null_samples=8_192, adaptive_cap=1.0,
        )
        for key, value in overrides.items():
            setattr(ns, key, value)
        return ns

    def test_basic_mapping(self):
        spec = EvaluationSpec.from_args(self._namespace())
        assert spec.design == "kronecker"
        assert spec.scheme == "eq6"
        assert spec.n_simulations == 10_000
        assert spec.model == "glitch"
        assert spec.mode == "first"
        assert not spec.adaptive

    def test_mode_and_model_flags(self):
        spec = EvaluationSpec.from_args(
            self._namespace(batch_probes=True, transitions=True)
        )
        assert spec.mode == "both"
        assert spec.model == "glitch-transition"
        spec = EvaluationSpec.from_args(self._namespace(pairs=True))
        assert spec.mode == "pairs"

    def test_adaptive_flags(self):
        spec = EvaluationSpec.from_args(
            self._namespace(adaptive=True, adaptive_cap=2.0,
                            decide_threshold=6.5)
        )
        assert spec.adaptive
        assert spec.max_budget_factor == 2.0
        assert spec.decide_threshold == 6.5

    def test_missing_attributes_use_defaults(self):
        # Sub-commands that do not define a flag still parse.
        spec = EvaluationSpec.from_args(argparse.Namespace())
        assert spec == EvaluationSpec()


class TestCampaignConfig:
    def test_plain_spec_one_chunk(self):
        config = EvaluationSpec(n_simulations=50_000).campaign_config()
        assert config.chunk_size is None
        assert config.adaptive is None

    def test_default_chunking_applies_server_chunk(self):
        config = EvaluationSpec(n_simulations=50_000).campaign_config(
            default_chunking=True
        )
        assert config.chunk_size == DEFAULT_CHUNK_SIZE
        config = EvaluationSpec(n_simulations=100).campaign_config(
            default_chunking=True
        )
        assert config.chunk_size == 100

    def test_adaptive_spec_always_chunks(self):
        spec = EvaluationSpec(n_simulations=50_000, adaptive=True)
        config = spec.campaign_config()
        assert config.chunk_size == DEFAULT_CHUNK_SIZE
        assert config.adaptive is not None
        assert config.adaptive.decide_threshold == spec.decide_threshold
        assert config.adaptive.max_budget_factor == spec.max_budget_factor

    def test_execution_extras_ride_along(self):
        config = EvaluationSpec().campaign_config(
            checkpoint="/tmp/x.npz", time_budget=5.0, early_stop=30.0
        )
        assert config.checkpoint == "/tmp/x.npz"
        assert config.time_budget == 5.0
        assert config.early_stop == 30.0


class TestApiVersionConstant:
    def test_v1(self):
        assert API_VERSION == "v1"
