"""Tests for the linear-cancellation screen and its (telling) limits."""

from repro.analysis.anf import BitPoly
from repro.analysis.rootcause import (
    find_linear_cancellations,
    transition_observation_anf,
    v1_observation_anf,
)
from repro.core.optimizations import RandomnessScheme


def var(name):
    return BitPoly.var(name)


class TestLinearScreen:
    def test_detects_direct_linear_reuse(self):
        """Two registers blinding secrets with the same mask: XOR unblinds
        a pure-secret function -- a definite first-order break."""
        observations = [
            var("X0") ^ var("rand.r"),
            var("X1") ^ var("rand.r"),
            var("rand.other"),
        ]
        findings = find_linear_cancellations(observations)
        assert findings
        indices, residual = findings[0]
        assert set(indices) == {0, 1}
        assert residual == var("X0") ^ var("X1")

    def test_share_randomness_in_residual_is_not_flagged(self):
        """A mask-free residual that still contains unobserved sharing
        randomness is inconclusive, not a definite leak."""
        observations = [
            (var("x0[0]@0") & var("X1")) ^ var("rand.r"),
            (var("x0[4]@0") & var("X5")) ^ var("rand.r"),
        ]
        assert find_linear_cancellations(observations) == []

    def test_fresh_masks_produce_no_findings(self):
        observations = [
            var("X0") ^ var("rand.r1"),
            var("X1") ^ var("rand.r2"),
        ]
        assert find_linear_cancellations(observations) == []

    def test_mask_free_but_secret_free_combos_ignored(self):
        observations = [var("rand.r"), var("rand.r")]
        assert find_linear_cancellations(observations) == []

    def test_triple_cancellation_found(self):
        observations = [
            var("X0") ^ var("rand.a") ^ var("rand.b"),
            var("rand.a"),
            var("rand.b"),
        ]
        findings = find_linear_cancellations(observations, max_subset=3)
        assert any(len(ix) == 3 for ix, _ in findings)


class TestKroneckerIsConditional:
    """The paper's leaks are NOT linear cancellations -- the screen stays
    empty even for the flawed schemes.  That is the point: the flaw hides
    inside products and only shows in joint distributions, which is why
    the pen-and-paper argument missed it."""

    def test_glitch_observation_has_no_linear_cancellation(self):
        for scheme in (
            RandomnessScheme.DEMEYER_EQ6,
            RandomnessScheme.FIRST_LAYER_R1R3,
            RandomnessScheme.FULL,
        ):
            observations = v1_observation_anf(scheme)
            assert find_linear_cancellations(observations) == []

    def test_transition_observation_has_no_linear_cancellation(self):
        observations = transition_observation_anf(
            RandomnessScheme.PROPOSED_EQ9
        )
        assert find_linear_cancellations(observations, max_subset=3) == []

    def test_transition_observation_shape(self):
        observations = transition_observation_anf(RandomnessScheme.FULL)
        # the support at two cycles: 4 layer-1 registers + the r5 wire? the
        # probed blind node's support contains the y registers and r5.
        assert len(observations) >= 8
