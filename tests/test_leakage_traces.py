"""Tests for bitsliced stimulus generation."""

import numpy as np
import pytest

from repro.core.kronecker import build_kronecker_delta
from repro.core.optimizations import RandomnessScheme
from repro.core.sbox import build_masked_sbox
from repro.leakage.traces import (
    StimulusGenerator,
    constant_words,
    random_nonzero_byte,
    random_words,
)
from repro.netlist.simulate import unpack_lanes

N_LANES = 512
N_WORDS = N_LANES // 64


def lanes(words):
    return unpack_lanes(np.asarray(words), N_LANES)


class TestPrimitives:
    def test_constant_words(self):
        assert lanes(constant_words(1, N_WORDS)).min() == 1
        assert lanes(constant_words(0, N_WORDS)).max() == 0

    def test_random_words_are_balanced(self):
        rng = np.random.default_rng(0)
        bits = lanes(random_words(rng, N_WORDS))
        assert 0.35 < bits.mean() < 0.65

    def test_nonzero_byte_never_zero(self):
        rng = np.random.default_rng(1)
        planes = random_nonzero_byte(rng, N_WORDS)
        value = np.zeros(N_LANES, dtype=np.uint16)
        for i, plane in enumerate(planes):
            value |= lanes(plane).astype(np.uint16) << i
        assert (value != 0).all()
        assert value.max() <= 255

    def test_nonzero_byte_rejection_exhaustion(self):
        """An RNG that only ever returns zero can never fix the zero lanes;
        the sampler must give up with a SimulationError, not loop forever."""

        class AllZeroRng:
            def integers(self, low, high, size, dtype):
                return np.zeros(size, dtype=dtype)

        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            random_nonzero_byte(AllZeroRng(), N_WORDS)


class TestStimulus:
    def setup_method(self):
        self.design = build_kronecker_delta(RandomnessScheme.FULL)
        self.generator = StimulusGenerator(self.design.dut, N_WORDS)

    def _decode_secret(self, values):
        dut = self.design.dut
        secret = np.zeros(N_LANES, dtype=np.uint16)
        for bit in range(8):
            plane = np.zeros(N_LANES, dtype=np.uint8)
            for share in range(dut.n_shares):
                plane ^= lanes(values[dut.share_buses[share][bit]])
            secret |= plane.astype(np.uint16) << bit
        return secret

    def test_fixed_group_shares_recombine_to_secret(self):
        stim = self.generator.fixed(0xA7, np.random.default_rng(2))
        for cycle in range(3):
            secret = self._decode_secret(stim(cycle))
            assert (secret == 0xA7).all()

    def test_random_group_secret_varies(self):
        stim = self.generator.random(np.random.default_rng(3))
        secret = self._decode_secret(stim(0))
        assert len(np.unique(secret)) > 50

    def test_shares_are_randomised_in_fixed_group(self):
        stim = self.generator.fixed(0x00, np.random.default_rng(4))
        values = stim(0)
        share0 = lanes(values[self.design.dut.share_buses[0][0]])
        assert 0.3 < share0.mean() < 0.7

    def test_all_inputs_covered(self):
        stim = self.generator.fixed(0, np.random.default_rng(5))
        values = stim(0)
        assert set(values) == set(self.design.netlist.inputs)

    def test_mask_bits_balanced(self):
        stim = self.generator.fixed(0, np.random.default_rng(6))
        values = stim(0)
        for net in self.design.dut.mask_bits:
            assert 0.3 < lanes(values[net]).mean() < 0.7


class TestSboxStimulus:
    def test_nonzero_bus_respected(self):
        design = build_masked_sbox(RandomnessScheme.FULL)
        generator = StimulusGenerator(design.dut, N_WORDS)
        stim = generator.random(np.random.default_rng(7))
        values = stim(0)
        r_value = np.zeros(N_LANES, dtype=np.uint16)
        for i, net in enumerate(design.dut.nonzero_byte_buses[0]):
            r_value |= lanes(values[net]).astype(np.uint16) << i
        assert (r_value != 0).all()
