"""Tests for the Monte-Carlo fixed-vs-random evaluator."""

import numpy as np
import pytest

from repro.core.kronecker import build_kronecker_delta
from repro.core.optimizations import RandomnessScheme
from repro.errors import SimulationError
from repro.leakage.evaluator import LeakageEvaluator, _mix_hash
from repro.leakage.model import ProbingModel

N_SIMS = 30_000  # leaks under test are enormous; modest N suffices


class TestFirstOrder:
    def test_detects_eq6_leak_at_g7(self, kronecker_eq6):
        evaluator = LeakageEvaluator(
            kronecker_eq6.dut, ProbingModel.GLITCH, seed=1
        )
        report = evaluator.evaluate(fixed_secret=0, n_simulations=N_SIMS)
        assert not report.passed
        leaking = " ".join(r.probe_names for r in report.leaking_results)
        assert "g7" in leaking

    def test_full_scheme_passes(self, kronecker_full):
        evaluator = LeakageEvaluator(
            kronecker_full.dut, ProbingModel.GLITCH, seed=1
        )
        report = evaluator.evaluate(fixed_secret=0, n_simulations=N_SIMS)
        assert report.passed

    def test_eq9_passes_glitch_fails_transition(self, kronecker_eq9):
        glitch = LeakageEvaluator(
            kronecker_eq9.dut, ProbingModel.GLITCH, seed=1
        ).evaluate(fixed_secret=0, n_simulations=N_SIMS)
        assert glitch.passed
        transition = LeakageEvaluator(
            kronecker_eq9.dut, ProbingModel.GLITCH_TRANSITION, seed=1
        ).evaluate(fixed_secret=0, n_simulations=N_SIMS)
        assert not transition.passed

    def test_windows_multiply_samples(self, kronecker_full):
        evaluator = LeakageEvaluator(
            kronecker_full.dut, ProbingModel.GLITCH, seed=2
        )
        report = evaluator.evaluate(
            fixed_secret=0, n_simulations=20_000, n_windows=4
        )
        assert report.n_simulations == 20_000

    def test_invalid_windows_rejected(self, kronecker_full):
        evaluator = LeakageEvaluator(kronecker_full.dut)
        with pytest.raises(SimulationError):
            evaluator.evaluate(n_simulations=100, n_windows=0)

    def test_budget_below_window_count_rejected(self, kronecker_full):
        """The historical clamp to one lane silently ran 100x the requested
        samples; an under-budget configuration must be an error instead."""
        evaluator = LeakageEvaluator(kronecker_full.dut)
        with pytest.raises(SimulationError, match="n_windows"):
            evaluator.evaluate(n_simulations=5, n_windows=10)
        with pytest.raises(SimulationError):
            evaluator.n_lanes_for(n_simulations=63, n_windows=64)
        assert evaluator.n_lanes_for(6_400, 64) == 100

    def test_report_contents(self, kronecker_eq6):
        evaluator = LeakageEvaluator(
            kronecker_eq6.dut, ProbingModel.GLITCH, seed=3
        )
        report = evaluator.evaluate(fixed_secret=0, n_simulations=N_SIMS)
        assert report.fixed_secret == 0
        assert report.results
        assert report.max_mlog10p == report.worst.mlog10p
        text = report.format_summary()
        assert "FAIL" in text
        assert "-log10(p)" in text

    def test_probe_class_lookup(self, kronecker_eq6):
        evaluator = LeakageEvaluator(kronecker_eq6.dut)
        v1 = kronecker_eq6.v_nodes["v1"]
        pc = evaluator.probe_class_for_net(v1)
        assert v1 in pc.members
        with pytest.raises(SimulationError):
            evaluator.probe_class_for_net(10**6)

    def test_probe_class_lookup_on_skipped_class(self, kronecker_eq6):
        """A net whose class was dropped for width reports *why* it is
        missing rather than a generic not-found error."""
        evaluator = LeakageEvaluator(kronecker_eq6.dut, max_support_bits=2)
        assert evaluator.skipped_classes
        skipped_net = next(iter(evaluator.skipped_classes[0].members))
        with pytest.raises(SimulationError, match="skipped"):
            evaluator.probe_class_for_net(skipped_net)

    def test_seed_reproducibility(self, kronecker_full):
        reports = [
            LeakageEvaluator(
                kronecker_full.dut, ProbingModel.GLITCH, seed=7
            ).evaluate(fixed_secret=0, n_simulations=5_000)
            for _ in range(2)
        ]
        a, b = reports
        assert [r.mlog10p for r in a.results] == [
            r.mlog10p for r in b.results
        ]


class TestSecondOrderPairs:
    def test_first_order_design_fails_pair_test(self, kronecker_full):
        """Positive control: pairing probes across shares recovers secrets."""
        evaluator = LeakageEvaluator(
            kronecker_full.dut, ProbingModel.GLITCH, seed=4
        )
        report = evaluator.evaluate_pairs(
            fixed_secret=0, n_simulations=N_SIMS, max_pairs=300
        )
        assert not report.passed

    def test_pair_offsets_validated(self, kronecker_full):
        evaluator = LeakageEvaluator(kronecker_full.dut)
        with pytest.raises(SimulationError):
            evaluator.evaluate_pairs(
                n_simulations=100, pair_offsets=(-1,)
            )

    def test_pair_subset_is_deterministic(self, kronecker_full):
        evaluator = LeakageEvaluator(
            kronecker_full.dut, ProbingModel.GLITCH, seed=5
        )
        r1 = evaluator.evaluate_pairs(
            n_simulations=2_000, max_pairs=20, pair_seed=9
        )
        r2 = evaluator.evaluate_pairs(
            n_simulations=2_000, max_pairs=20, pair_seed=9
        )
        assert [x.probe_names for x in r1.results] == [
            x.probe_names for x in r2.results
        ]


class TestHashing:
    def test_mix_hash_is_deterministic_permutation_like(self):
        keys = np.arange(1000, dtype=np.uint64)
        mixed = _mix_hash(keys)
        assert len(np.unique(mixed)) == 1000  # injective on small sets
        assert (_mix_hash(keys) == mixed).all()

    def test_wide_observations_bucketed(self, sbox_full):
        evaluator = LeakageEvaluator(
            sbox_full.dut, ProbingModel.GLITCH, seed=6, hash_bits=10
        )
        wide = next(
            pc
            for pc in evaluator.probe_classes
            if pc.observation_bits > 10
        )
        # evaluating only this class must produce a dof bounded by 2^10.
        report = evaluator.evaluate(
            fixed_secret=1, n_simulations=4_000, probe_classes=[wide]
        )
        assert report.results[0].dof < 1 << 10
