"""Tests for value-level sharings."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.errors import MaskingError
from repro.gf.gf256 import GF256
from repro.masking.shares import BooleanSharing, MultiplicativeSharing

bytes_ = st.integers(0, 255)
seeds = st.integers(0, 2**32 - 1)


class TestBooleanSharing:
    @given(bytes_, st.integers(2, 5), seeds)
    def test_share_recombines(self, value, n_shares, seed):
        sharing = BooleanSharing.share(value, n_shares, random.Random(seed))
        assert sharing.value == value
        assert len(sharing.shares) == n_shares
        assert sharing.order == n_shares - 1

    @given(bytes_, bytes_, seeds)
    def test_xor_is_sharewise(self, a, b, seed):
        rng = random.Random(seed)
        sa = BooleanSharing.share(a, 2, rng)
        sb = BooleanSharing.share(b, 2, rng)
        assert sa.xor(sb).value == a ^ b

    @given(bytes_, bytes_, seeds)
    def test_xor_constant(self, value, constant, seed):
        sharing = BooleanSharing.share(value, 2, random.Random(seed))
        assert sharing.xor_constant(constant).value == value ^ constant

    @given(bytes_, seeds)
    def test_map_linear_applies_per_share(self, value, seed):
        sharing = BooleanSharing.share(value, 3, random.Random(seed))
        doubled = sharing.map_linear(lambda s: GF256.multiply(2, s))
        assert doubled.value == GF256.multiply(2, value)

    def test_sharing_is_randomised(self):
        rng = random.Random(1)
        first = BooleanSharing.share(0xAB, 2, rng)
        second = BooleanSharing.share(0xAB, 2, rng)
        assert first.shares != second.shares  # overwhelmingly likely

    def test_minimum_two_shares(self):
        with pytest.raises(MaskingError):
            BooleanSharing((5,))

    def test_width_respected(self):
        with pytest.raises(MaskingError):
            BooleanSharing((1, 256))
        with pytest.raises(MaskingError):
            BooleanSharing.share(256, 2)
        bit_sharing = BooleanSharing.share(1, 2, random.Random(0), width=1)
        assert bit_sharing.value == 1

    def test_incompatible_xor_rejected(self):
        a = BooleanSharing.share(1, 2, random.Random(0))
        b = BooleanSharing.share(1, 3, random.Random(0))
        with pytest.raises(MaskingError):
            a.xor(b)


class TestMultiplicativeSharing:
    @given(bytes_, st.integers(2, 4), seeds)
    def test_share_recombines(self, value, n_shares, seed):
        sharing = MultiplicativeSharing.share(
            value, n_shares, random.Random(seed)
        )
        assert sharing.value == value

    def test_zero_value_problem_is_visible(self):
        """The flaw of Section II-B: zero stays unmasked.

        The last share equals 0 exactly when the secret is 0, for every
        choice of mask shares.
        """
        rng = random.Random(7)
        for _ in range(50):
            zero = MultiplicativeSharing.share(0, 2, rng)
            assert zero.shares[-1] == 0
            nonzero = MultiplicativeSharing.share(rng.randrange(1, 256), 2, rng)
            assert nonzero.shares[-1] != 0

    @given(st.integers(1, 255), st.integers(1, 255), seeds)
    def test_multiply_public(self, value, factor, seed):
        sharing = MultiplicativeSharing.share(value, 2, random.Random(seed))
        assert sharing.multiply_public(factor).value == GF256.multiply(
            value, factor
        )

    def test_zero_mask_share_rejected(self):
        with pytest.raises(MaskingError):
            MultiplicativeSharing((0, 5))

    def test_zero_public_factor_rejected(self):
        sharing = MultiplicativeSharing.share(3, 2, random.Random(0))
        with pytest.raises(MaskingError):
            sharing.multiply_public(0)

    def test_minimum_two_shares(self):
        with pytest.raises(MaskingError):
            MultiplicativeSharing((7,))
