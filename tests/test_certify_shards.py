"""Sharded exact enumeration: bit-identity to the serial engine,
checkpoint/resume, cancellation, and hypothesis properties on random
masked netlists.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kronecker import build_kronecker_delta
from repro.core.optimizations import RandomnessScheme
from repro.errors import CheckpointError, ExactAnalysisInfeasible
from repro.leakage.certify import (
    MIN_SHARD_LANE_BITS,
    ShardedExactAnalyzer,
    ShardPlan,
    run_exact_analysis,
)
from repro.leakage.exact import ExactAnalyzer

from tests.strategies import masked_circuits


def _eq6_subset(min_bits=8, max_bits=14, limit=6):
    """A handful of mid-size eq6 probe classes (multi-shard, still fast)."""
    design = build_kronecker_delta(RandomnessScheme.DEMEYER_EQ6)
    analyzer = ExactAnalyzer(design.dut, max_enum_bits=23)
    chosen = []
    for probe_class in analyzer.probe_classes:
        try:
            setup = analyzer.enumeration_setup(probe_class)
        except ExactAnalysisInfeasible:
            continue
        if min_bits <= setup.total_bits <= max_bits:
            chosen.append(probe_class)
        if len(chosen) >= limit:
            break
    assert len(chosen) >= 3
    return design, chosen


def _by_name(report):
    return {r.probe_names: r for r in report.results}


def _assert_identical(report_a, report_b):
    names_a, names_b = _by_name(report_a), _by_name(report_b)
    assert set(names_a) == set(names_b)
    for name, a in names_a.items():
        b = names_b[name]
        assert a.leaking == b.leaking, name
        assert a.tv_fixed_vs_random == b.tv_fixed_vs_random, name
        assert a.n_distinct_distributions == b.n_distinct_distributions, name


class TestShardedIdentity:
    def test_sharded_equals_serial(self):
        design, subset = _eq6_subset()
        serial = ExactAnalyzer(design.dut, max_enum_bits=23).analyze(
            probe_classes=subset
        )
        sharded = ShardedExactAnalyzer(
            design.dut, max_enum_bits=23, shard_lane_bits=7
        ).analyze(probe_classes=subset, workers=2)
        assert sharded.status == "complete"
        _assert_identical(serial, sharded)

    def test_identical_across_shard_sizes(self):
        design, subset = _eq6_subset()
        reports = [
            ShardedExactAnalyzer(
                design.dut, max_enum_bits=23, shard_lane_bits=bits
            ).analyze(probe_classes=subset)
            for bits in (7, 9, 12)
        ]
        _assert_identical(reports[0], reports[1])
        _assert_identical(reports[0], reports[2])

    def test_full_sweep_verdict(self):
        """The paper's eq6 verdict through the sharded front door."""
        design = build_kronecker_delta(RandomnessScheme.DEMEYER_EQ6)
        report = run_exact_analysis(
            design.dut, max_enum_bits=23, workers=4, shard_lane_bits=12
        )
        assert not report.passed
        assert sorted(r.probe_names for r in report.leaking_results) == [
            "g7.blind01",
            "g7.blind10",
            "g7.cross01",
            "g7.cross10",
            "g7.inner0",
            "g7.inner1",
        ]


class TestHooksAndCancellation:
    def test_hook_event_sequence(self):
        design, subset = _eq6_subset(limit=3)
        events = []
        ShardedExactAnalyzer(
            design.dut, max_enum_bits=23, shard_lane_bits=7
        ).analyze(
            probe_classes=subset,
            hook=lambda event, payload: events.append((event, payload)),
        )
        kinds = [e for e, _ in events]
        assert kinds[0] == "certify_start"
        assert kinds[-1] == "certify_end"
        start = events[0][1]
        assert start["n_probe_classes"] == len(subset)
        assert start["n_shards"] == kinds.count("shard_done")
        done = [p for e, p in events if e == "shard_done"]
        assert done[-1]["done"] == done[-1]["total"]

    def test_should_stop_truncates(self):
        design, subset = _eq6_subset()
        merges = []
        report = ShardedExactAnalyzer(
            design.dut, max_enum_bits=23, shard_lane_bits=7
        ).analyze(
            probe_classes=subset,
            hook=lambda event, payload: merges.append(event)
            if event == "shard_done"
            else None,
            should_stop=lambda: len(merges) >= 4,
        )
        assert report.status == "truncated:cancelled"
        assert len(report.results) < len(subset)


class TestCheckpointResume:
    def test_resume_completes_bit_identically(self, tmp_path):
        design, subset = _eq6_subset()
        path = str(tmp_path / "exact.ckpt")
        merges = []
        first = ShardedExactAnalyzer(
            design.dut, max_enum_bits=23, shard_lane_bits=7
        ).analyze(
            probe_classes=subset,
            checkpoint=path,
            hook=lambda event, payload: merges.append(event)
            if event == "shard_done"
            else None,
            should_stop=lambda: len(merges) >= 5,
        )
        assert first.status == "truncated:cancelled"
        assert os.path.exists(path)

        events = []
        resumed = ShardedExactAnalyzer(
            design.dut, max_enum_bits=23, shard_lane_bits=7
        ).analyze(
            probe_classes=subset,
            checkpoint=path,
            resume=True,
            hook=lambda event, payload: events.append((event, payload)),
        )
        assert resumed.status == "complete"
        assert events[0][1]["resumed_shards"] >= 5
        reference = ExactAnalyzer(design.dut, max_enum_bits=23).analyze(
            probe_classes=subset
        )
        _assert_identical(reference, resumed)

    def test_corrupt_checkpoint_quarantined(self, tmp_path):
        design, subset = _eq6_subset(limit=3)
        path = str(tmp_path / "exact.ckpt")
        with open(path, "wb") as handle:
            handle.write(b"not a checkpoint container")
        events = []
        report = ShardedExactAnalyzer(
            design.dut, max_enum_bits=23, shard_lane_bits=7
        ).analyze(
            probe_classes=subset,
            checkpoint=path,
            resume=True,
            hook=lambda event, payload: events.append(event),
        )
        assert report.status == "complete"
        assert "checkpoint_corrupt" in events
        assert os.path.exists(path + ".corrupt")

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        design, subset = _eq6_subset()
        path = str(tmp_path / "exact.ckpt")
        merges = []
        ShardedExactAnalyzer(
            design.dut, max_enum_bits=23, shard_lane_bits=7
        ).analyze(
            probe_classes=subset,
            checkpoint=path,
            hook=lambda event, payload: merges.append(event)
            if event == "shard_done"
            else None,
            should_stop=lambda: len(merges) >= 2,
        )
        # different lane split => different shard semantics => refuse.
        with pytest.raises(CheckpointError):
            ShardedExactAnalyzer(
                design.dut, max_enum_bits=23, shard_lane_bits=9
            ).analyze(probe_classes=subset, checkpoint=path, resume=True)


class TestRandomNetlistProperties:
    """Hypothesis: sharded counts merge bit-identically to single-shot on
    random bounded-randomness netlists, for random shard splits."""

    @given(dut=masked_circuits(), shard_lane_bits=st.integers(1, 12))
    @settings(max_examples=12, deadline=None)
    def test_sharded_matches_serial(self, dut, shard_lane_bits):
        serial = ExactAnalyzer(dut, max_enum_bits=16).analyze()
        sharded = ShardedExactAnalyzer(
            dut, max_enum_bits=16, shard_lane_bits=shard_lane_bits
        ).analyze()
        assert sharded.status == "complete"
        _assert_identical(serial, sharded)

    @given(dut=masked_circuits(), shard_lane_bits=st.integers(1, 12))
    @settings(max_examples=12, deadline=None)
    def test_shard_plans_never_split_lane_words(self, dut, shard_lane_bits):
        analyzer = ExactAnalyzer(dut, max_enum_bits=16)
        for probe_class in analyzer.probe_classes:
            setup = analyzer.enumeration_setup(probe_class)
            plan = ShardPlan.plan(setup.total_bits, shard_lane_bits)
            assert plan.n_shards * plan.lanes_per_shard == 1 << setup.total_bits
            if plan.n_shards > 1:
                assert plan.lane_bits >= MIN_SHARD_LANE_BITS
                assert plan.lanes_per_shard % 64 == 0
