"""Tests for the fresh-mask bus."""

import pytest

from repro.errors import MaskingError
from repro.masking.randomness import MaskBus
from repro.netlist.builder import CircuitBuilder
from repro.netlist.cells import CellType
from repro.netlist.simulate import ScalarSimulator


class TestFreshBits:
    def test_fresh_creates_inputs(self):
        b = CircuitBuilder("t")
        bus = MaskBus(b)
        r1 = bus.fresh("r1")
        r2 = bus.fresh("r2")
        assert r1 != r2
        assert bus.n_fresh_bits == 2
        assert b.netlist.is_input(r1)

    def test_fresh_is_idempotent_per_label(self):
        b = CircuitBuilder("t")
        bus = MaskBus(b)
        assert bus.fresh("r") == bus.fresh("r")
        assert bus.n_fresh_bits == 1

    def test_fresh_byte(self):
        b = CircuitBuilder("t")
        bus = MaskBus(b)
        byte = bus.fresh_byte("R")
        assert len(byte) == 8
        assert bus.n_fresh_bits == 8

    def test_lookup(self):
        b = CircuitBuilder("t")
        bus = MaskBus(b)
        r = bus.fresh("r")
        assert bus.net("r") == r
        with pytest.raises(MaskingError):
            bus.net("unknown")

    def test_labels_in_order(self):
        b = CircuitBuilder("t")
        bus = MaskBus(b)
        bus.fresh("a")
        bus.fresh("b")
        assert bus.labels() == ["a", "b"]


class TestAlias:
    def test_alias_costs_nothing(self):
        b = CircuitBuilder("t")
        bus = MaskBus(b)
        r1 = bus.fresh("r1")
        r3 = bus.alias("r3", r1)
        assert r3 == r1
        assert bus.n_fresh_bits == 1

    def test_alias_duplicate_label_rejected(self):
        b = CircuitBuilder("t")
        bus = MaskBus(b)
        r1 = bus.fresh("r1")
        with pytest.raises(MaskingError):
            bus.alias("r1", r1)


class TestDerived:
    def test_registered_xor_value(self):
        """r6 = [r5 xor r2]: one-cycle-delayed XOR (the Eq. (6) wiring)."""
        b = CircuitBuilder("t")
        bus = MaskBus(b)
        r5 = bus.fresh("r5")
        r2 = bus.fresh("r2")
        r6 = bus.derived_registered_xor("r6", r5, r2)
        b.output(r6)
        nl = b.build()
        sim = ScalarSimulator(nl)
        first = sim.step({r5: 1, r2: 0})
        assert first[r6] == 0  # register reset
        second = sim.step({r5: 0, r2: 0})
        assert second[r6] == 1  # r5(t-1) xor r2(t-1)

    def test_registered_xor_not_a_fresh_bit(self):
        b = CircuitBuilder("t")
        bus = MaskBus(b)
        r5 = bus.fresh("r5")
        r2 = bus.fresh("r2")
        bus.derived_registered_xor("r6", r5, r2)
        assert bus.n_fresh_bits == 2

    def test_delayed_chain_length(self):
        b = CircuitBuilder("t")
        bus = MaskBus(b)
        r = bus.fresh("r")
        bus.derived_delayed("d", r, cycles=3)
        assert sum(1 for _ in b.netlist.dff_cells()) == 3

    def test_delayed_value(self):
        b = CircuitBuilder("t")
        bus = MaskBus(b)
        r = bus.fresh("r")
        d = bus.derived_delayed("d", r, cycles=2)
        b.output(d)
        sim = ScalarSimulator(b.build())
        values = [sim.step({r: bit})[d] for bit in (1, 0, 0, 0)]
        assert values == [0, 0, 1, 0]

    def test_delayed_requires_positive_cycles(self):
        b = CircuitBuilder("t")
        bus = MaskBus(b)
        r = bus.fresh("r")
        with pytest.raises(MaskingError):
            bus.derived_delayed("d", r, cycles=0)

    def test_delayed_xor_combination(self):
        b = CircuitBuilder("t")
        bus = MaskBus(b)
        ra = bus.fresh("ra")
        rb = bus.fresh("rb")
        combo = bus.derived_delayed_xor("c", ra, 1, rb, 2)
        b.output(combo)
        sim = ScalarSimulator(b.build())
        # combo(t) = ra(t-1) xor rb(t-2), with reset-0 history.
        sequence = [(1, 0), (0, 1), (0, 0), (0, 0)]
        observed = [sim.step({ra: a, rb: bb})[combo] for a, bb in sequence]
        assert observed == [0, 1, 0, 1]

    def test_duplicate_derived_label_rejected(self):
        b = CircuitBuilder("t")
        bus = MaskBus(b)
        r = bus.fresh("r")
        bus.derived_delayed("d", r, cycles=1)
        with pytest.raises(MaskingError):
            bus.derived_delayed("d", r, cycles=1)
