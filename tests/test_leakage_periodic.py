"""Tests for the periodic-protocol leakage evaluator (full-core analysis)."""

import numpy as np
import pytest

from repro.core.aes_core import (
    ENCRYPTION_CYCLES,
    AesCoreHarness,
    build_masked_aes_core,
)
from repro.core.optimizations import RandomnessScheme
from repro.leakage.model import ProbingModel
from repro.leakage.periodic import PeriodicLeakageEvaluator

KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
N_LANES = 3_000


_CACHE = {}


def run_core_evaluation(scheme, seed_pair=(1, 2)):
    if scheme in _CACHE:
        return _CACHE[scheme]
    report = _run_core_evaluation(scheme, seed_pair)
    _CACHE[scheme] = report
    return report


def _run_core_evaluation(scheme, seed_pair):
    core = build_masked_aes_core(scheme)
    harness = AesCoreHarness(core)
    probe_nets = [
        c.output for c in core.netlist.cells if c.name.startswith("sb0.")
    ]
    evaluator = PeriodicLeakageEvaluator(
        core.netlist,
        ENCRYPTION_CYCLES,
        ProbingModel.GLITCH,
        probe_nets=probe_nets,
    )
    n_words = (N_LANES + 63) // 64
    # Fixed plaintext == key: round-1 S-box inputs are all 0x00, the
    # paper's worst-case fixed class at cipher level.
    stim_fixed = harness.bitsliced_stimulus(
        np.random.default_rng(seed_pair[0]), n_words, KEY, KEY
    )
    stim_random = harness.bitsliced_stimulus(
        np.random.default_rng(seed_pair[1]), n_words, KEY, None
    )
    return evaluator.evaluate(
        stim_fixed,
        stim_random,
        N_LANES,
        phases=[3, 4],
        n_periods=2,
        design_name=f"masked_aes_core_{scheme.value}",
    )


class TestFullCoreLeakage:
    def test_eq6_core_leaks_in_round_one_kronecker(self):
        report = run_core_evaluation(RandomnessScheme.DEMEYER_EQ6)
        assert not report.passed
        for result in report.leaking_results:
            assert "g7" in result.probe_names

    def test_fixed_core_passes(self):
        report = run_core_evaluation(RandomnessScheme.TRANSITION_R7_EQ_R1)
        assert report.passed

    def test_report_phases_recorded(self):
        report = run_core_evaluation(RandomnessScheme.TRANSITION_R7_EQ_R1)
        assert any("@phase3" in r.probe_names for r in report.results)
        assert any("@phase4" in r.probe_names for r in report.results)
        # every probe class evaluated once per phase
        assert len(report.results) % 2 == 0
