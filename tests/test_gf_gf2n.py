"""Tests for generic GF(2^n) fields."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import FieldError
from repro.gf.gf2n import (
    GF2n,
    carryless_multiply,
    field,
    is_irreducible,
    polynomial_mod,
)

GF16 = field(0b10011)  # x^4 + x + 1
GF256 = field(0x11B)

elements256 = st.integers(min_value=0, max_value=255)
nonzero256 = st.integers(min_value=1, max_value=255)


class TestPolynomialArithmetic:
    def test_carryless_known(self):
        assert carryless_multiply(0b11, 0b11) == 0b101
        assert carryless_multiply(0b101, 0b10) == 0b1010
        assert carryless_multiply(7, 0) == 0

    def test_polynomial_mod_reduces_degree(self):
        assert polynomial_mod(0b100011011, 0x11B) == 0
        assert polynomial_mod(0b1, 0x11B) == 1

    def test_polynomial_mod_zero_modulus(self):
        with pytest.raises(FieldError):
            polynomial_mod(5, 0)

    def test_irreducibility_known_polynomials(self):
        assert is_irreducible(0x11B)  # AES polynomial
        assert is_irreducible(0b111)  # x^2+x+1
        assert is_irreducible(0b10011)  # x^4+x+1
        assert not is_irreducible(0b101)  # x^2+1 = (x+1)^2
        assert not is_irreducible(0x11A)  # even constant term -> divisible by x

    def test_reducible_rejected_by_constructor(self):
        with pytest.raises(FieldError):
            GF2n(0b101)


class TestFieldAxioms:
    @given(elements256, elements256, elements256)
    def test_multiplication_associative(self, a, b, c):
        lhs = GF256.multiply(GF256.multiply(a, b), c)
        rhs = GF256.multiply(a, GF256.multiply(b, c))
        assert lhs == rhs

    @given(elements256, elements256)
    def test_multiplication_commutative(self, a, b):
        assert GF256.multiply(a, b) == GF256.multiply(b, a)

    @given(elements256, elements256, elements256)
    def test_distributivity(self, a, b, c):
        lhs = GF256.multiply(a, b ^ c)
        rhs = GF256.multiply(a, b) ^ GF256.multiply(a, c)
        assert lhs == rhs

    @given(elements256)
    def test_multiplicative_identity(self, a):
        assert GF256.multiply(a, 1) == a

    @given(nonzero256)
    def test_inverse_property(self, a):
        assert GF256.multiply(a, GF256.inverse(a)) == 1

    @given(nonzero256)
    def test_fermat_exponent(self, a):
        # a^255 == 1 in GF(256)*.
        assert GF256.power(a, 255) == 1

    @given(nonzero256, st.integers(-10, 10))
    def test_power_negative_exponents(self, a, k):
        direct = GF256.power(a, k)
        via_inverse = GF256.power(GF256.inverse(a), -k)
        assert direct == via_inverse


class TestFieldApi:
    def test_zero_has_no_inverse(self):
        with pytest.raises(FieldError):
            GF256.inverse(0)
        with pytest.raises(FieldError):
            GF256.power(0, -1)

    def test_inverse_or_zero(self):
        assert GF256.inverse_or_zero(0) == 0
        assert GF256.inverse_or_zero(1) == 1

    def test_out_of_range_rejected(self):
        with pytest.raises(FieldError):
            GF256.multiply(256, 1)
        with pytest.raises(FieldError):
            GF256.add(-1, 0)

    def test_exp_log_tables_consistent(self):
        for a in range(1, 256):
            assert GF256.exp_table[GF256.log_table[a]] == a

    def test_generator_generates_group(self):
        seen = set()
        value = 1
        for _ in range(255):
            seen.add(value)
            value = GF256.multiply(value, GF256.generator)
        assert len(seen) == 255

    def test_field_cache_returns_same_object(self):
        assert field(0x11B) is field(0x11B)

    def test_degree_and_order(self):
        assert GF16.degree == 4
        assert GF16.order == 16
        assert GF256.degree == 8

    def test_small_field_exhaustive_inverses(self):
        for a in range(1, 16):
            assert GF16.multiply(a, GF16.inverse(a)) == 1

    def test_degree_limit(self):
        with pytest.raises(FieldError):
            GF2n((1 << 17) | 0b11)  # degree 17 (x^17 + x + 1 is irreducible)
