"""Tests for share-wise linear gadget helpers."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.aes.sbox import AFFINE_CONSTANT, AFFINE_MATRIX, affine_transform
from repro.errors import MaskingError
from repro.masking.gadgets import (
    sharewise_linear,
    sharewise_not,
    sharewise_register,
    sharewise_xor,
    unshare_xor,
)
from repro.netlist.builder import CircuitBuilder
from repro.netlist.simulate import ScalarSimulator, evaluate_combinational


def shared_inputs(builder, name, width, n_shares):
    return [
        builder.input_bus(f"{name}{s}", width) for s in range(n_shares)
    ]


def assign_shared(buses, shares):
    assignment = {}
    for bus, share_value in zip(buses, shares):
        for i, net in enumerate(bus):
            assignment[net] = (share_value >> i) & 1
    return assignment


def read_bus(values, bus):
    return sum(values[net] << i for i, net in enumerate(bus))


bytes_ = st.integers(0, 255)


class TestSharewiseOps:
    @given(bytes_, bytes_, bytes_, bytes_)
    def test_xor(self, a0, a1, b0, b1):
        b = CircuitBuilder("t")
        a = shared_inputs(b, "a", 8, 2)
        c = shared_inputs(b, "b", 8, 2)
        result = sharewise_xor(b, a, c)
        values = evaluate_combinational(
            b.netlist, {**assign_shared(a, (a0, a1)), **assign_shared(c, (b0, b1))}
        )
        got = read_bus(values, result[0]) ^ read_bus(values, result[1])
        assert got == (a0 ^ a1) ^ (b0 ^ b1)

    @given(bytes_, bytes_)
    def test_not_flips_recombined_value(self, a0, a1):
        b = CircuitBuilder("t")
        a = shared_inputs(b, "a", 8, 2)
        result = sharewise_not(b, a)
        values = evaluate_combinational(b.netlist, assign_shared(a, (a0, a1)))
        got = read_bus(values, result[0]) ^ read_bus(values, result[1])
        assert got == (a0 ^ a1) ^ 0xFF

    @given(bytes_, bytes_)
    def test_affine_layer(self, a0, a1):
        b = CircuitBuilder("t")
        a = shared_inputs(b, "a", 8, 2)
        result = sharewise_linear(b, AFFINE_MATRIX, a, AFFINE_CONSTANT)
        values = evaluate_combinational(b.netlist, assign_shared(a, (a0, a1)))
        got = read_bus(values, result[0]) ^ read_bus(values, result[1])
        assert got == affine_transform(a0 ^ a1)

    @given(bytes_, bytes_)
    def test_unshare_xor(self, a0, a1):
        b = CircuitBuilder("t")
        a = shared_inputs(b, "a", 8, 2)
        combined = unshare_xor(b, a)
        values = evaluate_combinational(b.netlist, assign_shared(a, (a0, a1)))
        assert read_bus(values, combined) == a0 ^ a1

    def test_register_stage_delays(self):
        b = CircuitBuilder("t")
        a = shared_inputs(b, "a", 2, 2)
        registered = sharewise_register(b, a, "d")
        for bus in registered:
            b.output_bus(bus, f"o{registered.index(bus)}")
        nl = b.build()
        sim = ScalarSimulator(nl)
        first = sim.step(assign_shared(a, (0b11, 0b01)))
        assert read_bus(first, registered[0]) == 0
        second = sim.step(assign_shared(a, (0, 0)))
        assert read_bus(second, registered[0]) == 0b11
        assert read_bus(second, registered[1]) == 0b01

    def test_mismatched_share_counts_rejected(self):
        b = CircuitBuilder("t")
        a = shared_inputs(b, "a", 4, 2)
        c = shared_inputs(b, "b", 4, 3)
        with pytest.raises(MaskingError):
            sharewise_xor(b, a, c)

    def test_unshare_width_mismatch_rejected(self):
        b = CircuitBuilder("t")
        x = b.input_bus("x", 2)
        y = b.input_bus("y", 3)
        with pytest.raises(MaskingError):
            unshare_xor(b, [x, y])
