"""Tests for exact certification: shard plans, merges, compositional
certificates over the DOM fixtures, and the skipped-probe budget detail.

The heavier cross-engine agreements (exact vs Monte-Carlo, certificate
counterexamples vs exact leaks) live in ``test_certify_cross.py``; shard
bit-identity and checkpointing in ``test_certify_shards.py``; seeded-fault
kill tests in ``test_certify_mutation.py``.
"""

import json

import numpy as np
import pytest

from repro.core.kronecker import build_kronecker_delta
from repro.core.optimizations import RandomnessScheme
from repro.leakage.campaign import CampaignConfig, EvaluationCampaign
from repro.leakage.certify import (
    MIN_SHARD_LANE_BITS,
    CompositionalChecker,
    ShardPlan,
    dom_and_design,
    dom_and_pair_design,
    merge_shard_counts,
)
from repro.leakage.evaluator import LeakageEvaluator
from repro.leakage.model import ProbingModel


class TestShardPlan:
    def test_splits_requested_lane_bits(self):
        plan = ShardPlan.plan(total_bits=20, shard_lane_bits=16)
        assert plan.lane_bits == 16
        assert plan.n_shards == 1 << 4
        assert plan.lanes_per_shard == 1 << 16

    def test_small_class_is_single_shard(self):
        plan = ShardPlan.plan(total_bits=4, shard_lane_bits=16)
        assert plan.n_shards == 1
        assert plan.lane_bits == 4

    def test_lane_floor_enforced(self):
        """Requests below the lane-word floor are clamped, never split."""
        plan = ShardPlan.plan(total_bits=20, shard_lane_bits=2)
        assert plan.lane_bits == MIN_SHARD_LANE_BITS
        assert plan.n_shards == 1 << (20 - MIN_SHARD_LANE_BITS)

    @pytest.mark.parametrize("total_bits", [1, 5, 6, 7, 12, 20, 24])
    @pytest.mark.parametrize("shard_lane_bits", [1, 6, 9, 16, 32])
    def test_coverage_and_alignment(self, total_bits, shard_lane_bits):
        plan = ShardPlan.plan(total_bits, shard_lane_bits)
        # shards tile the full 2^k assignment space exactly...
        assert plan.n_shards * plan.lanes_per_shard == 1 << total_bits
        # ...and whenever there is more than one shard, each covers whole
        # 64-lane simulation words (no shard boundary splits a lane word).
        if plan.n_shards > 1:
            assert plan.lane_bits >= MIN_SHARD_LANE_BITS
            assert plan.lanes_per_shard % 64 == 0


class TestMergeShardCounts:
    def _shard(self, keys, rows_counts, n_secrets=2):
        keys = np.asarray(keys, dtype=np.uint64)
        rows = np.asarray([r for r, _ in rows_counts], dtype=np.intp)
        counts = np.asarray([c for _, c in rows_counts], dtype=np.int64)
        return keys, rows, counts

    def test_merge_accumulates(self):
        keys = np.zeros(0, dtype=np.uint64)
        hist = np.zeros((2, 0), dtype=np.int64)
        k, r, c = self._shard([3, 7], [(0, [1, 2]), (1, [3, 4])])
        keys, hist = merge_shard_counts(keys, hist, k, r, c)
        k, r, c = self._shard([5, 7], [(0, [10, 20])])
        keys, hist = merge_shard_counts(keys, hist, k, r, c)
        assert keys.tolist() == [3, 5, 7]
        assert hist.tolist() == [[1, 10, 22], [3, 0, 4]]

    def test_merge_order_independent(self):
        shards = [
            self._shard([1, 9], [(0, [2, 2]), (1, [1, 1])]),
            self._shard([4], [(1, [7])]),
            self._shard([1, 4, 9], [(0, [1, 1, 1])]),
        ]

        def run(order):
            keys = np.zeros(0, dtype=np.uint64)
            hist = np.zeros((2, 0), dtype=np.int64)
            for index in order:
                keys, hist = merge_shard_counts(keys, hist, *shards[index])
            return keys, hist

        ref_keys, ref_hist = run([0, 1, 2])
        for order in ([2, 1, 0], [1, 0, 2], [2, 0, 1]):
            keys, hist = run(order)
            assert (keys == ref_keys).all()
            assert (hist == ref_hist).all()


class TestDomAndCertificate:
    """The single DOM-AND: the paper's base gadget is 1-SNI, not PINI."""

    def test_classic_certified(self):
        report = CompositionalChecker(dom_and_design(), model="classic").check()
        assert report.certified
        assert report.passed
        assert not report.counterexamples
        (gadget,) = [g for g in report.gadgets if g.kind == "shares"]
        assert gadget.classic is not None and gadget.classic.is_sni

    def test_not_pini(self):
        report = CompositionalChecker(dom_and_design(), model="classic").check()
        (gadget,) = [g for g in report.gadgets if g.kind == "shares"]
        assert gadget.pini is not None
        assert not gadget.pini.is_pini

    def test_robust_certified(self):
        report = CompositionalChecker(dom_and_design(), model="robust").check()
        assert report.certified


class TestPairComposition:
    """Two DOM-ANDs into a third: certifiable with fresh masks, broken by
    first-layer randomness reuse -- the paper's composition in miniature."""

    def test_fresh_masks_certify_both_models(self):
        dut = dom_and_pair_design(shared_mask=False)
        for model in ("classic", "robust"):
            report = CompositionalChecker(dut, model=model).check()
            assert report.certified, model

    def test_shared_mask_refused_classically(self):
        dut = dom_and_pair_design(shared_mask=True)
        report = CompositionalChecker(dut, model="classic").check()
        assert not report.certified
        (entry,) = report.reused_masks
        assert entry["mask"] == "r1"
        assert sorted(entry["gadgets"]) == ["g1", "g2"]

    def test_shared_mask_fails_robustly_with_counterexamples(self):
        dut = dom_and_pair_design(shared_mask=True)
        report = CompositionalChecker(dut, model="robust").check()
        assert not report.certified
        assert report.counterexamples
        # the failure localizes to the combining gadget, and every
        # counterexample is an exact distribution difference, not a
        # conservative composition argument.
        for counterexample in report.counterexamples:
            assert counterexample["gadget"] == "g3"
            assert counterexample["model"] == "exact-distribution"
            assert counterexample["probes"]
        probes = {p for c in report.counterexamples for p in c["probes"]}
        assert "g3.inner0" in probes

    def test_report_serializes(self):
        report = CompositionalChecker(
            dom_and_pair_design(shared_mask=True), model="robust"
        ).check()
        data = json.loads(json.dumps(report.to_dict()))
        assert data["mode"] == "certificate"
        assert data["certified"] is False
        assert data["counterexamples"]
        names = [g["name"] for g in data["gadgets"]]
        assert {"g1", "g2", "g3"}.issubset(names)

    def test_format_summary(self):
        good = CompositionalChecker(
            dom_and_pair_design(shared_mask=False), model="robust"
        ).check()
        assert "CERTIFIED" in good.format_summary()
        bad = CompositionalChecker(
            dom_and_pair_design(shared_mask=True), model="robust"
        ).check()
        text = bad.format_summary()
        assert "NOT CERTIFIED" in text
        assert "counterexample" in text


class TestExactCliVerdicts:
    def test_all_infeasible_is_inconclusive_not_a_pass(self, capsys):
        """An exact run that could examine nothing must exit 3, never 0."""
        from repro.cli import main

        code = main(
            ["campaign", "--exact", "--scheme", "eq6", "--max-enum-bits", "1"]
        )
        assert code == 3
        assert "INCONCLUSIVE" in capsys.readouterr().out

    def test_leak_beats_inconclusive(self, capsys):
        """A found leak is a proof even when other probes were skipped."""
        from repro.cli import main

        code = main(
            ["campaign", "--exact", "--scheme", "eq6", "--max-enum-bits", "20"]
        )
        assert code == 1
        assert "INSECURE" in capsys.readouterr().out


class TestSkippedDetail:
    """Budget-exceeded probes are reported with their sizes, not just
    counted (regression for the silent ExactAnalysisInfeasible drop)."""

    N_SIMS = 5_000

    def _evaluator(self, design, max_support_bits=2):
        return LeakageEvaluator(
            design.dut,
            ProbingModel.GLITCH,
            seed=5,
            max_support_bits=max_support_bits,
        )

    def test_report_carries_per_probe_budget_detail(self, kronecker_eq6):
        evaluator = self._evaluator(kronecker_eq6)
        report = evaluator.evaluate(n_simulations=self.N_SIMS)
        assert report.skipped_probes
        assert len(report.skipped_detail) == len(report.skipped_probes)
        data = report.to_dict()
        assert data["skipped"] == report.skipped_detail
        for entry in data["skipped"]:
            assert entry["budget"] == 2
            assert entry["support_bits"] > entry["budget"]
            assert entry["probe"]

    def test_unskipped_report_has_no_skipped_key(self, kronecker_full):
        """Fully-evaluated reports stay byte-identical to older versions."""
        evaluator = self._evaluator(kronecker_full, max_support_bits=40)
        report = evaluator.evaluate(n_simulations=self.N_SIMS)
        assert not report.skipped_probes
        assert "skipped" not in report.to_dict()

    def test_summary_mentions_budget(self, kronecker_eq6):
        evaluator = self._evaluator(kronecker_eq6)
        report = evaluator.evaluate(n_simulations=self.N_SIMS)
        assert "> budget 2" in report.format_summary()

    def test_campaign_emits_probe_skipped_telemetry(self, kronecker_eq6):
        events = []
        campaign = EvaluationCampaign(
            self._evaluator(kronecker_eq6),
            CampaignConfig(n_simulations=self.N_SIMS, chunk_size=self.N_SIMS),
            hook=lambda event, payload: events.append((event, payload)),
        )
        report = campaign.run()
        skipped = [p for e, p in events if e == "probe_skipped"]
        assert len(skipped) == len(report.skipped_probes)
        for payload in skipped:
            assert payload["support_bits"] > payload["budget"]
