"""Tests for the AES field module."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import FieldError
from repro.gf.gf256 import (
    AES_POLYNOMIAL,
    GF256,
    gf256_inverse,
    gf256_multiply,
    gf256_power,
    gf256_strict_inverse,
)


class TestKnownValues:
    def test_fips_multiplication_example(self):
        # FIPS-197 section 4.2: {57} x {83} = {c1}
        assert gf256_multiply(0x57, 0x83) == 0xC1

    def test_xtime_chain(self):
        # {57} x {02} = {ae}, x {04} = {47}, x {08} = {8e}, x {10} = {07}
        assert gf256_multiply(0x57, 0x02) == 0xAE
        assert gf256_multiply(0x57, 0x04) == 0x47
        assert gf256_multiply(0x57, 0x08) == 0x8E
        assert gf256_multiply(0x57, 0x10) == 0x07

    def test_known_inverse(self):
        # {53}^-1 = {CA} in the AES field.
        assert gf256_inverse(0x53) == 0xCA
        assert gf256_inverse(0xCA) == 0x53

    def test_polynomial_constant(self):
        assert AES_POLYNOMIAL == 0x11B
        assert GF256.modulus == 0x11B


class TestInverseSemantics:
    def test_zero_maps_to_zero(self):
        assert gf256_inverse(0) == 0

    def test_strict_inverse_rejects_zero(self):
        # The zero-value problem of multiplicative masking in one line.
        with pytest.raises(FieldError):
            gf256_strict_inverse(0)

    def test_all_inverses_exhaustive(self):
        for a in range(1, 256):
            assert gf256_multiply(a, gf256_inverse(a)) == 1

    def test_zero_and_one_self_inverse(self):
        # The property the Kronecker-delta zero-mapping relies on:
        # both 0 and 1 are their own inverses.
        assert gf256_inverse(1) == 1
        assert gf256_inverse(0) == 0


class TestPower:
    @given(st.integers(1, 255), st.integers(0, 20))
    def test_power_matches_repeated_multiplication(self, a, k):
        expected = 1
        for _ in range(k):
            expected = gf256_multiply(expected, a)
        assert gf256_power(a, k) == expected

    @given(st.integers(0, 255))
    def test_square_is_frobenius(self, a):
        # Squaring is GF(2)-linear: (a + b)^2 = a^2 + b^2.
        b = 0x2F
        lhs = gf256_power(a ^ b, 2)
        rhs = gf256_power(a, 2) ^ gf256_power(b, 2)
        assert lhs == rhs
