"""Tests for the full masked AES S-box netlist (paper Fig. 2)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.aes.sbox import sbox
from repro.core.optimizations import RandomnessScheme
from repro.core.sbox import SBOX_LATENCY, build_masked_sbox
from repro.errors import MaskingError
from repro.netlist.simulate import ScalarSimulator


def run_sbox(design, x, rng, warmup=9):
    """Drive a fresh sharing of x each cycle; read the settled output."""
    dut = design.dut
    sim = ScalarSimulator(design.netlist)
    values = None
    for _ in range(warmup):
        share0 = rng.randrange(256)
        assignment = {}
        for i in range(8):
            assignment[dut.share_buses[0][i]] = (share0 >> i) & 1
            assignment[dut.share_buses[1][i]] = ((share0 ^ x) >> i) & 1
        for net in dut.mask_bits:
            assignment[net] = rng.randrange(2)
        r = rng.randrange(1, 256)
        r_prime = rng.randrange(256)
        for i in range(8):
            assignment[dut.nonzero_byte_buses[0][i]] = (r >> i) & 1
            assignment[dut.uniform_byte_buses[0][i]] = (r_prime >> i) & 1
        values = sim.step(assignment)
    out = 0
    for i in range(8):
        bit = 0
        for bus in design.output_shares:
            bit ^= values[bus[i]]
        out |= bit << i
    return out


class TestFunctional:
    def test_all_inputs_with_full_scheme(self, sbox_full):
        rng = random.Random(99)
        for x in range(256):
            assert run_sbox(sbox_full, x, rng) == sbox(x)

    @pytest.mark.parametrize(
        "scheme",
        [
            RandomnessScheme.DEMEYER_EQ6,
            RandomnessScheme.PROPOSED_EQ9,
            RandomnessScheme.TRANSITION_R7_EQ_R1,
        ],
    )
    def test_schemes_do_not_change_function(self, scheme):
        design = build_masked_sbox(scheme)
        rng = random.Random(5)
        for x in (0, 1, 0x53, 0x80, 0xFF):
            assert run_sbox(design, x, rng) == sbox(x)

    def test_no_kronecker_correct_on_nonzero(self, sbox_no_kronecker):
        rng = random.Random(17)
        for x in (1, 2, 0x53, 0xFE, 0xFF):
            assert run_sbox(sbox_no_kronecker, x, rng) == sbox(x)

    def test_no_kronecker_breaks_on_zero(self, sbox_no_kronecker):
        """Without the delta, X=0 gives A(0)=0x63 only by luck of 0^-1=0.

        P1 = 0 -> Q1 = 0 -> output = affine(0) = 0x63 = sbox(0): the value
        is accidentally right, but P1 is stuck at zero (the unmasked zero of
        Section II-B).  We check the stuck share, which is the actual flaw.
        """
        rng = random.Random(23)
        design = sbox_no_kronecker
        sim = ScalarSimulator(design.netlist)
        dut = design.dut
        values = None
        for _ in range(9):
            share0 = rng.randrange(256)
            assignment = {}
            for i in range(8):
                assignment[dut.share_buses[0][i]] = (share0 >> i) & 1
                assignment[dut.share_buses[1][i]] = (share0 >> i) & 1
            for i in range(8):
                assignment[dut.nonzero_byte_buses[0][i]] = (
                    rng.randrange(1, 256) >> i
                ) & 1
                assignment[dut.uniform_byte_buses[0][i]] = (
                    rng.randrange(256) >> i
                ) & 1
            values = sim.step(assignment)
        netlist = design.netlist
        p1 = sum(
            values[netlist.net(f"b2m.m0[{i}]")]
            ^ values[netlist.net(f"b2m.m1[{i}]")]
            for i in range(8)
        )
        assert p1 == 0  # the multiplicative share carries unmasked zero


class TestStructure:
    def test_latency(self, sbox_full):
        assert sbox_full.latency == SBOX_LATENCY == 5

    def test_v_nodes_only_with_kronecker(self, sbox_full, sbox_no_kronecker):
        assert set(sbox_full.v_nodes) == {"v1", "v2", "v3", "v4"}
        assert sbox_no_kronecker.v_nodes == {}

    def test_mask_budget(self, sbox_full, sbox_no_kronecker):
        assert sbox_full.dut.n_fresh_mask_bits == 7
        assert sbox_no_kronecker.dut.n_fresh_mask_bits == 0
        assert len(sbox_full.dut.nonzero_byte_buses) == 1
        assert len(sbox_full.dut.uniform_byte_buses) == 1

    def test_eq6_reduces_fresh_bits(self):
        design = build_masked_sbox(RandomnessScheme.DEMEYER_EQ6)
        assert design.dut.n_fresh_mask_bits == 3

    def test_output_shape(self, sbox_full):
        assert len(sbox_full.output_shares) == 2
        assert all(len(bus) == 8 for bus in sbox_full.output_shares)

    def test_kronecker_needs_scheme(self):
        with pytest.raises(MaskingError):
            build_masked_sbox(scheme=None, include_kronecker=True)

    def test_design_names_reflect_configuration(self, sbox_full):
        assert "full_7_fresh" in sbox_full.netlist.name
        nk = build_masked_sbox(include_kronecker=False)
        assert "no_kronecker" in nk.netlist.name
