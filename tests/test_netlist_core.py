"""Tests for the netlist data structure."""

import pytest

from repro.errors import NetlistError
from repro.netlist.cells import CellType, evaluate_cell
from repro.netlist.core import Netlist


def small_netlist():
    nl = Netlist("t")
    a = nl.add_net("a")
    b = nl.add_net("b")
    c = nl.add_net("c")
    q = nl.add_net("q")
    nl.mark_input(a)
    nl.mark_input(b)
    nl.add_cell(CellType.AND, (a, b), c, "and0")
    nl.add_cell(CellType.DFF, (c,), q, "reg0")
    nl.mark_output(q)
    return nl, (a, b, c, q)


class TestConstruction:
    def test_basic_shape(self):
        nl, (a, b, c, q) = small_netlist()
        nl.validate()
        assert nl.n_nets == 4
        assert len(nl.cells) == 2
        assert nl.inputs == [a, b]
        assert nl.outputs == [q]

    def test_duplicate_net_name_rejected(self):
        nl = Netlist()
        nl.add_net("x")
        with pytest.raises(NetlistError):
            nl.add_net("x")

    def test_net_lookup(self):
        nl, (a, _, _, _) = small_netlist()
        assert nl.net("a") == a
        assert nl.net_name(a) == "a"
        with pytest.raises(NetlistError):
            nl.net("missing")

    def test_double_driver_rejected(self):
        nl = Netlist()
        a = nl.add_net("a")
        b = nl.add_net("b")
        nl.mark_input(a)
        nl.add_cell(CellType.NOT, (a,), b, "n0")
        with pytest.raises(NetlistError):
            nl.add_cell(CellType.BUF, (a,), b, "n1")

    def test_driving_an_input_rejected(self):
        nl = Netlist()
        a = nl.add_net("a")
        b = nl.add_net("b")
        nl.mark_input(a)
        nl.mark_input(b)
        with pytest.raises(NetlistError):
            nl.add_cell(CellType.NOT, (a,), b, "n0")

    def test_input_cannot_be_driven_net(self):
        nl = Netlist()
        a = nl.add_net("a")
        b = nl.add_net("b")
        nl.mark_input(a)
        nl.add_cell(CellType.NOT, (a,), b, "n0")
        with pytest.raises(NetlistError):
            nl.mark_input(b)

    def test_wrong_arity_rejected(self):
        nl = Netlist()
        a = nl.add_net("a")
        b = nl.add_net("b")
        nl.mark_input(a)
        with pytest.raises(NetlistError):
            nl.add_cell(CellType.AND, (a,), b, "bad")

    def test_out_of_range_net_rejected(self):
        nl = Netlist()
        a = nl.add_net("a")
        nl.mark_input(a)
        with pytest.raises(NetlistError):
            nl.add_cell(CellType.NOT, (a,), 99, "bad")

    def test_floating_net_fails_validation(self):
        nl = Netlist()
        nl.add_net("dangling")
        with pytest.raises(NetlistError):
            nl.validate()


class TestQueries:
    def test_stable_nets_are_inputs_and_registers(self):
        nl, (a, b, c, q) = small_netlist()
        assert set(nl.stable_nets()) == {a, b, q}

    def test_driver_lookup(self):
        nl, (a, b, c, q) = small_netlist()
        assert nl.driver(a) is None
        assert nl.driver(c).cell_type is CellType.AND
        assert nl.driver(q).cell_type is CellType.DFF

    def test_fanout_map(self):
        nl, (a, b, c, q) = small_netlist()
        fanout = nl.fanout_map()
        assert fanout[a] == [0]
        assert fanout[c] == [1]
        assert fanout[q] == []

    def test_cell_iterators(self):
        nl, _ = small_netlist()
        assert [c.name for c in nl.comb_cells()] == ["and0"]
        assert [c.name for c in nl.dff_cells()] == ["reg0"]

    def test_repr_mentions_counts(self):
        nl, _ = small_netlist()
        text = repr(nl)
        assert "cells=2" in text
        assert "dffs=1" in text


class TestCellSemantics:
    @pytest.mark.parametrize(
        "kind,inputs,expected",
        [
            (CellType.AND, (1, 1), 1),
            (CellType.AND, (1, 0), 0),
            (CellType.NAND, (1, 1), 0),
            (CellType.OR, (0, 0), 0),
            (CellType.OR, (0, 1), 1),
            (CellType.NOR, (0, 0), 1),
            (CellType.XOR, (1, 1), 0),
            (CellType.XOR, (1, 0), 1),
            (CellType.XNOR, (1, 1), 1),
            (CellType.NOT, (1,), 0),
            (CellType.BUF, (1,), 1),
            (CellType.CONST0, (), 0),
            (CellType.CONST1, (), 1),
            (CellType.MUX, (0, 1, 0), 1),
            (CellType.MUX, (1, 1, 0), 0),
        ],
    )
    def test_evaluate_cell(self, kind, inputs, expected):
        assert evaluate_cell(kind, inputs) == expected

    def test_dff_not_combinational(self):
        with pytest.raises(ValueError):
            evaluate_cell(CellType.DFF, (0,))

    def test_arity_table(self):
        assert CellType.AND.arity == 2
        assert CellType.NOT.arity == 1
        assert CellType.MUX.arity == 3
        assert CellType.DFF.arity == 1
        assert CellType.CONST0.arity == 0

    def test_sequential_flags(self):
        assert CellType.DFF.is_sequential
        assert not CellType.AND.is_sequential
        assert CellType.CONST1.is_constant
        assert not CellType.XOR.is_constant
