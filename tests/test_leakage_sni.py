"""Tests for the (S)NI gadget checker."""

import pytest

from repro.errors import MaskingError
from repro.leakage.sni import (
    GadgetSpec,
    SniChecker,
    dom_and_gadget,
    unprotected_and_gadget,
)
from repro.masking.dom import dom_and
from repro.masking.randomness import MaskBus
from repro.netlist.builder import CircuitBuilder


class TestDomAnd:
    def test_dom_and_is_1_sni_on_stable_values(self):
        """The property De Meyer et al. proved by hand -- and it holds."""
        result = SniChecker(dom_and_gadget(), robust=False).check(order=1)
        assert result.is_ni
        assert result.is_sni
        assert not result.ni_violations

    def test_dom_and_robust_sni_fails_at_outputs(self):
        """Glitch-extended output probes see both product registers: the
        classic reason DOM-indep needs output registers for composition --
        and the kind of gap between hand proofs on stable values and
        extended probing models that the paper is about."""
        result = SniChecker(dom_and_gadget(), robust=True).check(order=1)
        assert result.is_ni  # single robust probes still leak nothing
        assert not result.is_sni
        violating = {v.probe_names[0] for v in result.sni_violations}
        assert any("z" in name for name in violating)

    def test_unregistered_variant_still_standard_sni(self):
        result = SniChecker(
            dom_and_gadget(register_inner=False), robust=False
        ).check(order=1)
        assert result.is_sni


class TestBrokenGadget:
    def test_unprotected_and_fails_ni(self):
        result = SniChecker(unprotected_and_gadget(), robust=False).check(1)
        assert not result.is_ni
        assert not result.is_sni
        names = {v.probe_names[0] for v in result.ni_violations}
        assert "x_clear" in names or "product" in names

    def test_summary_format(self):
        result = SniChecker(unprotected_and_gadget(), robust=False).check(1)
        text = result.summary()
        assert "NI=NO" in text
        assert "standard" in text


class TestDirectComposition:
    def build_pair(self, shared_mask: bool) -> GadgetSpec:
        """Two DOM-ANDs sharing a mask, multiplied directly in layer 2.

        The second layer multiplies the two same-masked results without
        re-blinding first, so the reuse is visible even to *standard*
        single probes -- the strongest form of the failure mode.
        """
        builder = CircuitBuilder("pair")
        x = [builder.input("x0"), builder.input("x1")]
        y = [builder.input("y0"), builder.input("y1")]
        u = [builder.input("u0"), builder.input("u1")]
        v = [builder.input("v0"), builder.input("v1")]
        bus = MaskBus(builder)
        r1 = bus.fresh("r1")
        r3 = r1 if shared_mask else bus.fresh("r3")
        z1 = dom_and(builder, x, y, {(0, 1): r1}, "g1")
        z2 = dom_and(builder, u, v, {(0, 1): r3}, "g3")
        r5 = bus.fresh("r5")
        w = dom_and(builder, z1, z2, {(0, 1): r5}, "g5")
        outs = [builder.output(net, f"w{i}") for i, net in enumerate(w)]
        netlist = builder.build()
        return GadgetSpec(
            netlist=netlist,
            input_shares=[x, y, u, v],
            mask_nets=bus.fresh_input_nets,
            output_shares=outs,
            settle_cycles=5,
        )

    def test_fresh_masks_compose_at_order_one(self):
        gadget = self.build_pair(shared_mask=False)
        result = SniChecker(gadget, robust=True).check(order=1)
        assert result.is_ni

    def test_shared_mask_breaks_even_standard_ni(self):
        """g5's inner product computes (a xor r)(b xor r): the reuse is
        already visible in the stable value of a single wire."""
        gadget = self.build_pair(shared_mask=True)
        result = SniChecker(gadget, robust=False).check(order=1)
        assert not result.is_ni
        names = {v.probe_names[0] for v in result.ni_violations}
        assert any(name.startswith("g5.") for name in names)


class TestKroneckerSliceComposition:
    """The paper's actual topology in miniature.

    Layer 1: G1 and G3, optionally with r1 = r3.  Layer 2: G5 and G6
    re-blind their results with fresh masks before G7 multiplies them.
    Classic stable-value NI is clean either way (the re-blinding hides the
    reuse from single wire values -- this is why the pen-and-paper proof
    passed), while glitch-extended probes on G7's products observe the
    layer-2 registers jointly and catch the reuse (Eq. (8)).
    """

    @staticmethod
    def build(shared_mask: bool) -> GadgetSpec:
        builder = CircuitBuilder("slice")
        x = [builder.input("x0"), builder.input("x1")]
        y = [builder.input("y0"), builder.input("y1")]
        u = [builder.input("u0"), builder.input("u1")]
        v = [builder.input("v0"), builder.input("v1")]
        s = [builder.input("s0"), builder.input("s1")]
        t = [builder.input("t0"), builder.input("t1")]
        bus = MaskBus(builder)
        r1 = bus.fresh("r1")
        r3 = r1 if shared_mask else bus.fresh("r3")
        r5 = bus.fresh("r5")
        r6 = bus.fresh("r6")
        r7 = bus.fresh("r7")
        z1 = dom_and(builder, x, y, {(0, 1): r1}, "g1")
        z3 = dom_and(builder, u, v, {(0, 1): r3}, "g3")
        w5 = dom_and(builder, z1, s, {(0, 1): r5}, "g5")
        w6 = dom_and(builder, z3, t, {(0, 1): r6}, "g6")
        out = dom_and(builder, w5, w6, {(0, 1): r7}, "g7")
        outs = [builder.output(net, f"o{i}") for i, net in enumerate(out)]
        netlist = builder.build()
        return GadgetSpec(
            netlist=netlist,
            input_shares=[x, y, u, v, s, t],
            mask_nets=bus.fresh_input_nets,
            output_shares=outs,
            settle_cycles=6,
        )

    def test_standard_ni_clean_despite_reuse(self):
        gadget = self.build(shared_mask=True)
        result = SniChecker(gadget, robust=False).check(order=1)
        assert result.is_ni

    def test_robust_probes_catch_the_reuse(self):
        gadget = self.build(shared_mask=True)
        result = SniChecker(gadget, robust=True).check(order=1)
        assert not result.is_ni
        names = {v.probe_names[0] for v in result.ni_violations}
        assert any(name.startswith("g7.") for name in names)

    def test_fresh_masks_pass_robust_ni(self):
        gadget = self.build(shared_mask=False)
        result = SniChecker(gadget, robust=True).check(order=1)
        assert result.is_ni


class TestLimits:
    def test_enumeration_budget_enforced(self):
        builder = CircuitBuilder("big")
        shares = [
            [builder.input(f"i{k}_{i}") for i in range(2)] for k in range(12)
        ]
        acc = shares[0][0]
        for group in shares:
            for net in group:
                acc = builder.xor(acc, net)
        builder.output(acc, "o")
        gadget = GadgetSpec(
            netlist=builder.build(),
            input_shares=shares,
            mask_nets=[],
            output_shares=[builder.netlist.net("o")],
        )
        with pytest.raises(MaskingError):
            SniChecker(gadget)
