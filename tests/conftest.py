"""Shared fixtures: session-scoped builds of the paper's designs."""

import random

import pytest

from repro.core.kronecker import build_kronecker_delta
from repro.core.optimizations import RandomnessScheme, SecondOrderScheme
from repro.core.sbox import build_masked_sbox


@pytest.fixture
def rng():
    return random.Random(0xC0FFEE)


@pytest.fixture(scope="session")
def kronecker_full():
    return build_kronecker_delta(RandomnessScheme.FULL)


@pytest.fixture(scope="session")
def kronecker_eq6():
    return build_kronecker_delta(RandomnessScheme.DEMEYER_EQ6)


@pytest.fixture(scope="session")
def kronecker_eq9():
    return build_kronecker_delta(RandomnessScheme.PROPOSED_EQ9)


@pytest.fixture(scope="session")
def kronecker_second_order():
    return build_kronecker_delta(SecondOrderScheme.FULL_21, order=2)


@pytest.fixture(scope="session")
def sbox_full():
    return build_masked_sbox(RandomnessScheme.FULL)


@pytest.fixture(scope="session")
def sbox_no_kronecker():
    return build_masked_sbox(include_kronecker=False)
