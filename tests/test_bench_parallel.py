"""Tests for the serial-vs-parallel benchmark script."""

import json

from benchmarks.bench_parallel import main


class TestBenchParallel:
    def test_writes_record_and_exits_zero(self, tmp_path):
        out = tmp_path / "BENCH_parallel.json"
        code = main(
            [
                "--design", "kronecker",
                "--scheme", "eq6",
                "--simulations", "10000",
                "--workers", "2",
                "--out", str(out),
            ]
        )
        assert code == 0
        record = json.loads(out.read_text())
        assert record["bit_identical"] is True
        assert record["serial_seconds"] > 0
        assert record["parallel_seconds"] > 0
        assert record["serial_sims_per_second"] > 0
        assert record["workers"] == 2
        # Every registered engine whose toolchain is present gets a
        # serial timing leg.
        assert {"bitsliced", "compiled"} <= set(record["engine_seconds"])
        assert record["parallel_strategy"] in (
            "process_pool", "in_kernel_threads"
        )

    def test_unreachable_speedup_exits_two(self, tmp_path, capsys):
        out = tmp_path / "BENCH_parallel.json"
        code = main(
            [
                "--design", "kronecker",
                "--scheme", "eq6",
                "--simulations", "10000",
                "--workers", "1",
                "--require-speedup", "1000",
                "--out", str(out),
            ]
        )
        assert code == 2
        assert "below required" in capsys.readouterr().err
        # the record is still written for post-mortem inspection.
        assert json.loads(out.read_text())["bit_identical"] is True
