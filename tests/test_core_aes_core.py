"""Tests for the full gate-level masked AES-128 core."""

import random

import numpy as np
import pytest

from repro.aes.cipher import aes128_encrypt_block, key_expansion
from repro.core.aes_core import (
    ENCRYPTION_CYCLES,
    MIX_COLUMNS_MATRIX,
    ROUND_CYCLES,
    SHIFT_ROWS_PERMUTATION,
    AesCoreHarness,
    build_masked_aes_core,
)
from repro.core.optimizations import RandomnessScheme
from repro.gf.gf2 import gf2_matrix_vector
from repro.aes.cipher import mix_columns, shift_rows
from repro.netlist.stats import netlist_stats


@pytest.fixture(scope="module")
def core():
    return build_masked_aes_core(RandomnessScheme.TRANSITION_R7_EQ_R1)


class TestLinearLayers:
    def test_shift_rows_permutation_matches_reference(self):
        state = list(range(16))
        shifted = shift_rows(state)
        for out_pos in range(16):
            assert shifted[out_pos] == state[SHIFT_ROWS_PERMUTATION[out_pos]]

    def test_mix_columns_matrix_matches_reference(self):
        state = [0xDB, 0x13, 0x53, 0x45] + [0x00] * 12
        column = sum(state[i] << (8 * i) for i in range(4))
        image = gf2_matrix_vector(MIX_COLUMNS_MATRIX, column)
        expected = mix_columns(state)[:4]
        got = [(image >> (8 * i)) & 0xFF for i in range(4)]
        assert got == expected

    def test_mix_columns_matrix_linear_random(self):
        rng = random.Random(0)
        for _ in range(20):
            state = [rng.randrange(256) for _ in range(4)] + [0] * 12
            column = sum(state[i] << (8 * i) for i in range(4))
            image = gf2_matrix_vector(MIX_COLUMNS_MATRIX, column)
            got = [(image >> (8 * i)) & 0xFF for i in range(4)]
            assert got == mix_columns(state)[:4]


class TestStructure:
    def test_core_size(self, core):
        stats = netlist_stats(core.netlist)
        assert stats.n_registers == 2304  # 256 state + 16 x 128 sbox regs
        assert stats.n_cells > 15_000

    def test_timing_constants(self):
        assert ROUND_CYCLES == 6
        assert ENCRYPTION_CYCLES == 62

    def test_mask_budget(self, core):
        # 16 S-boxes x 6 fresh Kronecker bits (r7 = r1 scheme).
        assert core.fresh_mask_bits_per_cycle == 16 * 6
        assert len(core.r_buses) == 16
        assert len(core.r_prime_buses) == 16

    def test_schedules_cover_encryption(self, core):
        harness = AesCoreHarness(core)
        controls = harness.control_schedule()
        keys = harness.round_key_schedule(bytes(16))
        assert len(controls) == ENCRYPTION_CYCLES
        assert len(keys) == ENCRYPTION_CYCLES
        assert controls[0]["load"] == 1
        assert sum(c["capture"] for c in controls) == 10
        # last is asserted exactly during round 10.
        last_cycles = [i for i, c in enumerate(controls) if c["last"]]
        assert len(last_cycles) == ROUND_CYCLES
        assert keys[1] == key_expansion(bytes(16))[1]


class TestEncryption:
    def test_fips_vector(self, core):
        harness = AesCoreHarness(core)
        pt = bytes.fromhex("00112233445566778899aabbccddeeff")
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        ct = harness.encrypt(pt, key, random.Random(1))
        assert ct.hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"

    def test_random_blocks_match_reference(self, core):
        harness = AesCoreHarness(core)
        rng = random.Random(2)
        for _ in range(2):
            pt = bytes(rng.randrange(256) for _ in range(16))
            key = bytes(rng.randrange(256) for _ in range(16))
            assert harness.encrypt(pt, key, rng) == aes128_encrypt_block(
                pt, key
            )

    def test_different_schemes_same_function(self):
        eq6_core = build_masked_aes_core(RandomnessScheme.DEMEYER_EQ6)
        harness = AesCoreHarness(eq6_core)
        pt = bytes(range(16))
        key = bytes(reversed(range(16)))
        assert harness.encrypt(pt, key, random.Random(3)) == (
            aes128_encrypt_block(pt, key)
        )


class TestInternalKeySchedule:
    @pytest.fixture(scope="class")
    def ks_core(self):
        return build_masked_aes_core(
            RandomnessScheme.TRANSITION_R7_EQ_R1, own_key_schedule=True
        )

    def test_fips_vector(self, ks_core):
        harness = AesCoreHarness(ks_core)
        pt = bytes.fromhex("00112233445566778899aabbccddeeff")
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        ct = harness.encrypt(pt, key, random.Random(4))
        assert ct.hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"

    def test_random_vector(self, ks_core):
        harness = AesCoreHarness(ks_core)
        rng = random.Random(5)
        pt = bytes(rng.randrange(256) for _ in range(16))
        key = bytes(rng.randrange(256) for _ in range(16))
        assert harness.encrypt(pt, key, rng) == aes128_encrypt_block(
            pt, key
        )

    def test_structure(self, ks_core):
        # 20 S-box pipelines (16 state + 4 key schedule) and the key regs.
        stats = netlist_stats(ks_core.netlist)
        assert stats.n_registers == 3072  # 2304 + 4*128 sbox + 256 key
        assert ks_core.own_key_schedule
        assert ks_core.rcon_bus is not None
        assert ks_core.fresh_mask_bits_per_cycle == 20 * 6
        assert len(ks_core.r_buses) == 20

    def test_rcon_schedule(self, ks_core):
        harness = AesCoreHarness(ks_core)
        rcons = harness.rcon_schedule()
        assert len(rcons) == ENCRYPTION_CYCLES
        assert rcons[1] == 0x01  # round 1
        assert rcons[-2] == 0x36  # round 10

    def test_key_schedule_port_is_cipher_key(self, ks_core):
        harness = AesCoreHarness(ks_core)
        key = bytes(range(16))
        schedule = harness.round_key_schedule(key)
        assert all(entry == list(key) for entry in schedule)

    def test_bitsliced_stimulus_covers_rcon(self, ks_core):
        harness = AesCoreHarness(ks_core)
        stim = harness.bitsliced_stimulus(
            np.random.default_rng(6), 2, bytes(16), bytes(16)
        )
        values = stim(1)
        assert set(values) == set(ks_core.netlist.inputs)


class TestBitslicedStimulus:
    def test_stimulus_covers_all_inputs(self, core):
        harness = AesCoreHarness(core)
        stim = harness.bitsliced_stimulus(
            np.random.default_rng(0), 4, bytes(16), bytes(16)
        )
        values = stim(0)
        assert set(values) == set(core.netlist.inputs)

    def test_fixed_plaintext_shares_recombine(self, core):
        harness = AesCoreHarness(core)
        pt = bytes(range(16))
        stim = harness.bitsliced_stimulus(
            np.random.default_rng(1), 4, bytes(16), pt
        )
        values = stim(0)
        from repro.netlist.simulate import unpack_lanes

        for byte in range(16):
            for bit in range(8):
                pos = 8 * byte + bit
                s0 = unpack_lanes(values[core.plaintext_shares[0][pos]], 256)
                s1 = unpack_lanes(values[core.plaintext_shares[1][pos]], 256)
                expected = (pt[byte] >> bit) & 1
                assert ((s0 ^ s1) == expected).all()
