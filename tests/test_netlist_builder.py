"""Tests for the circuit builder."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import NetlistError
from repro.gf.gf2 import gf2_matrix_vector
from repro.netlist.builder import CircuitBuilder
from repro.netlist.simulate import evaluate_combinational


def eval_outputs(netlist, assignment, nets):
    values = evaluate_combinational(netlist, assignment)
    return [values[n] for n in nets]


class TestPorts:
    def test_input_bus_names(self):
        b = CircuitBuilder("t")
        bus = b.input_bus("x", 4)
        nl = b.netlist
        assert [nl.net_name(n) for n in bus] == [
            "x[0]", "x[1]", "x[2]", "x[3]"
        ]
        assert nl.inputs == bus

    def test_output_alias_creates_buffer(self):
        b = CircuitBuilder("t")
        a = b.input("a")
        out = b.output(a, "y")
        nl = b.build()
        assert nl.net_name(out) == "y"
        assert nl.outputs == [out]

    def test_scope_prefixes_names(self):
        b = CircuitBuilder("t")
        a = b.input("a")
        with b.scope("mod"):
            with b.scope("sub"):
                n = b.not_(a, "inv")
        assert b.netlist.net_name(n) == "mod.sub.inv"

    def test_scope_restored_after_exception(self):
        b = CircuitBuilder("t")
        with pytest.raises(RuntimeError):
            with b.scope("mod"):
                raise RuntimeError("boom")
        a = b.input("plain")
        assert b.netlist.net_name(a) == "plain"


class TestGates:
    def test_each_gate_truth(self):
        b = CircuitBuilder("t")
        x = b.input("x")
        y = b.input("y")
        nets = {
            "and": b.and_(x, y),
            "or": b.or_(x, y),
            "xor": b.xor(x, y),
            "nand": b.nand(x, y),
            "nor": b.nor(x, y),
            "xnor": b.xnor(x, y),
            "not": b.not_(x),
            "buf": b.buf(x),
        }
        nl = b.netlist
        values = evaluate_combinational(nl, {x: 1, y: 0})
        assert values[nets["and"]] == 0
        assert values[nets["or"]] == 1
        assert values[nets["xor"]] == 1
        assert values[nets["nand"]] == 1
        assert values[nets["nor"]] == 0
        assert values[nets["xnor"]] == 0
        assert values[nets["not"]] == 0
        assert values[nets["buf"]] == 1

    def test_mux_selects(self):
        b = CircuitBuilder("t")
        s, d0, d1 = b.input("s"), b.input("d0"), b.input("d1")
        m = b.mux(s, d0, d1)
        nl = b.netlist
        assert evaluate_combinational(nl, {s: 0, d0: 1, d1: 0})[m] == 1
        assert evaluate_combinational(nl, {s: 1, d0: 1, d1: 0})[m] == 0

    def test_constants_shared(self):
        b = CircuitBuilder("t")
        assert b.constant(0) == b.constant(0)
        assert b.constant(1) == b.constant(1)
        assert b.constant(0) != b.constant(1)
        with pytest.raises(NetlistError):
            b.constant(2)


class TestReductions:
    @given(st.lists(st.integers(0, 1), min_size=1, max_size=9))
    def test_xor_reduce(self, bits):
        b = CircuitBuilder("t")
        ins = b.input_bus("x", len(bits))
        out = b.xor_reduce(ins)
        values = evaluate_combinational(
            b.netlist, dict(zip(ins, bits))
        )
        expected = 0
        for bit in bits:
            expected ^= bit
        assert values[out] == expected

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=9))
    def test_and_reduce(self, bits):
        b = CircuitBuilder("t")
        ins = b.input_bus("x", len(bits))
        out = b.and_reduce(ins)
        values = evaluate_combinational(b.netlist, dict(zip(ins, bits)))
        assert values[out] == int(all(bits))

    def test_empty_reduction_rejected(self):
        b = CircuitBuilder("t")
        with pytest.raises(NetlistError):
            b.xor_reduce([])
        with pytest.raises(NetlistError):
            b.and_reduce([])

    def test_xor_bus_width_mismatch(self):
        b = CircuitBuilder("t")
        x = b.input_bus("x", 2)
        y = b.input_bus("y", 3)
        with pytest.raises(NetlistError):
            b.xor_bus(x, y)


class TestLinear:
    @given(
        st.lists(st.integers(0, 255), min_size=8, max_size=8),
        st.integers(0, 255),
        st.integers(0, 255),
    )
    def test_gf2_linear_matches_matrix_vector(self, rows, constant, value):
        b = CircuitBuilder("t")
        bus = b.input_bus("x", 8)
        outs = b.gf2_linear(tuple(rows), bus, constant)
        assignment = {bus[i]: (value >> i) & 1 for i in range(8)}
        values = evaluate_combinational(b.netlist, assignment)
        got = sum(values[outs[i]] << i for i in range(8))
        assert got == gf2_matrix_vector(tuple(rows), value) ^ constant

    def test_zero_row_yields_constant(self):
        b = CircuitBuilder("t")
        bus = b.input_bus("x", 2)
        outs = b.gf2_linear((0, 0b11), bus, 0b01)
        values = evaluate_combinational(b.netlist, {bus[0]: 1, bus[1]: 1})
        assert values[outs[0]] == 1  # constant bit
        assert values[outs[1]] == 0  # 1 xor 1
