"""Mutation-kill tests: every seeded first-order flaw must break the
compositional certificate with a concrete counterexample probe set.

The base design is the fresh-mask DOM-AND pair composition, certified
under both the classic and the glitch-robust model; each mutant seeds a
known first-order flaw through :mod:`repro.netlist.mutate`.
"""

import dataclasses

import pytest

from repro.leakage.certify import CompositionalChecker, dom_and_pair_design
from repro.netlist.mutate import (
    dff_by_name,
    registers_to_buffers,
    rewire_fanin,
    stuck_net,
)


@pytest.fixture(scope="module")
def base():
    return dom_and_pair_design(shared_mask=False)


def _mutant(base, netlist):
    return dataclasses.replace(base, netlist=netlist)


def _reuse_mask(base):
    """Feed g2 from g1's fresh mask: the paper's randomness reuse."""
    netlist = base.netlist
    return _mutant(
        base, rewire_fanin(netlist, netlist.net("r2"), netlist.net("r1"))
    )


def _drop_registers(base):
    """Remove g1's DOM registers so glitches propagate across the gadget."""
    netlist = base.netlist
    return _mutant(base, registers_to_buffers(netlist, dff_by_name(netlist, "g1.")))


def _kill_mask(base):
    """Stuck the combining gadget's fresh mask at zero."""
    netlist = base.netlist
    return _mutant(base, stuck_net(netlist, netlist.net("r3"), 0))


MUTANTS = {
    "reuse-mask": _reuse_mask,
    "drop-registers": _drop_registers,
    "kill-mask": _kill_mask,
}


class TestBaseIsCertified:
    @pytest.mark.parametrize("model", ["classic", "robust"])
    def test_clean_design_certifies(self, base, model):
        report = CompositionalChecker(base, model=model).check()
        assert report.certified


class TestMutantsAreKilled:
    @pytest.mark.parametrize("name", sorted(MUTANTS))
    def test_robust_certificate_refuses_with_counterexample(self, base, name):
        mutant = MUTANTS[name](base)
        report = CompositionalChecker(mutant, model="robust").check()
        assert not report.certified, name
        # every kill comes with a concrete probe set, not a bare refusal.
        assert report.counterexamples, name
        for counterexample in report.counterexamples:
            assert counterexample["probes"], name
            assert counterexample["detail"], name

    def test_reused_mask_localized(self, base):
        report = CompositionalChecker(
            _reuse_mask(base), model="classic"
        ).check()
        assert not report.certified
        (entry,) = report.reused_masks
        assert entry["mask"] == "r1"
        assert sorted(entry["gadgets"]) == ["g1", "g2"]

    def test_reuse_leak_surfaces_at_combining_gadget(self, base):
        """The reuse flaw is seeded in the first layer but the exact
        distribution difference appears at g3 -- the paper's point that
        local gadget views cannot see composition failures."""
        report = CompositionalChecker(_reuse_mask(base), model="robust").check()
        gadgets = {c["gadget"] for c in report.counterexamples}
        assert gadgets == {"g3"}
        probes = {p for c in report.counterexamples for p in c["probes"]}
        assert "g3.inner0" in probes

    def test_dropped_registers_break_first_layer(self, base):
        report = CompositionalChecker(
            _drop_registers(base), model="robust"
        ).check()
        gadgets = {c["gadget"] for c in report.counterexamples}
        assert "g1" in gadgets

    def test_killed_mask_breaks_output_sharing(self, base):
        report = CompositionalChecker(_kill_mask(base), model="robust").check()
        gadgets = {c["gadget"] for c in report.counterexamples}
        assert gadgets == {"g3"}
