"""Integration tests: every security claim of the paper, end to end.

Exact-engine verdicts are deterministic; Monte-Carlo checks target leaks so
strong that modest sample counts give astronomically small p-values.
"""

import pytest

from repro.core.kronecker import build_kronecker_delta
from repro.core.optimizations import RandomnessScheme, SecondOrderScheme
from repro.core.sbox import build_masked_sbox
from repro.leakage.evaluator import LeakageEvaluator
from repro.leakage.exact import ExactAnalyzer
from repro.leakage.model import ProbingModel


def exact_v_node_verdict(scheme):
    design = build_kronecker_delta(scheme)
    analyzer = ExactAnalyzer(design.dut)
    leaking = False
    for node in ("v1", "v2", "v3", "v4"):
        pc = analyzer.probe_class_for_net(design.v_nodes[node])
        if analyzer.analyze_probe_class(pc).leaking:
            leaking = True
    return not leaking


class TestSectionIII:
    """Evaluation and systematic analysis."""

    def test_claim_eq6_breaks_first_order_security(self):
        """Core finding: the Eq. (6) optimization leaks at G7 (exact)."""
        assert not exact_v_node_verdict(RandomnessScheme.DEMEYER_EQ6)

    def test_claim_seven_fresh_bits_secure(self):
        """'By avoiding such an optimization ... the design passes.'"""
        assert exact_v_node_verdict(RandomnessScheme.FULL)

    def test_claim_sbox_with_eq6_fails_at_g7(self, request):
        """The full S-box with Eq. (6) and fixed input 0 fails, with the
        leakage localized to the Kronecker delta's G7 (Fig. 3)."""
        design = build_masked_sbox(RandomnessScheme.DEMEYER_EQ6)
        evaluator = LeakageEvaluator(design.dut, ProbingModel.GLITCH, seed=1)
        report = evaluator.evaluate(fixed_secret=0, n_simulations=60_000)
        assert not report.passed
        for result in report.leaking_results:
            assert "g7" in result.probe_names

    def test_claim_sbox_without_kronecker_nonzero_fixed_passes(self):
        """'the design passes ... confirming the masking conversions,
        inversion and affine transformation' (non-zero fixed input)."""
        design = build_masked_sbox(include_kronecker=False)
        evaluator = LeakageEvaluator(design.dut, ProbingModel.GLITCH, seed=1)
        report = evaluator.evaluate(fixed_secret=0x53, n_simulations=60_000)
        assert report.passed

    def test_zero_value_problem_without_kronecker(self):
        """Fixing input 0 without the delta exposes the classic flaw."""
        design = build_masked_sbox(include_kronecker=False)
        evaluator = LeakageEvaluator(design.dut, ProbingModel.GLITCH, seed=1)
        report = evaluator.evaluate(fixed_secret=0x00, n_simulations=60_000)
        assert not report.passed


class TestSectionIV:
    """The proposed optimization and the transition-extended model."""

    def test_claim_eq9_secure_under_glitch_model(self):
        assert exact_v_node_verdict(RandomnessScheme.PROPOSED_EQ9)

    def test_claim_r5_eq_r6_leaks(self):
        """Section IV's counter-example: reusing within layer 2 leaks."""
        assert not exact_v_node_verdict(RandomnessScheme.SECOND_LAYER_R5R6)

    def test_claim_eq9_fails_under_transitions(self, kronecker_eq9):
        evaluator = LeakageEvaluator(
            kronecker_eq9.dut, ProbingModel.GLITCH_TRANSITION, seed=1
        )
        report = evaluator.evaluate(fixed_secret=0, n_simulations=60_000)
        assert not report.passed

    def test_claim_eq6_fails_under_transitions(self, kronecker_eq6):
        evaluator = LeakageEvaluator(
            kronecker_eq6.dut, ProbingModel.GLITCH_TRANSITION, seed=1
        )
        report = evaluator.evaluate(fixed_secret=0, n_simulations=60_000)
        assert not report.passed

    @pytest.mark.parametrize(
        "scheme",
        [
            RandomnessScheme.TRANSITION_R7_EQ_R1,
            RandomnessScheme.TRANSITION_R7_EQ_R2,
            RandomnessScheme.TRANSITION_R7_EQ_R3,
            RandomnessScheme.TRANSITION_R7_EQ_R4,
        ],
    )
    def test_claim_four_solutions_survive_transitions(self, scheme):
        design = build_kronecker_delta(scheme)
        evaluator = LeakageEvaluator(
            design.dut, ProbingModel.GLITCH_TRANSITION, seed=1
        )
        report = evaluator.evaluate(fixed_secret=0, n_simulations=60_000)
        assert report.passed

    def test_claim_full_survives_transitions(self, kronecker_full):
        evaluator = LeakageEvaluator(
            kronecker_full.dut, ProbingModel.GLITCH_TRANSITION, seed=1
        )
        report = evaluator.evaluate(fixed_secret=0, n_simulations=60_000)
        assert report.passed


class TestSecondOrderClaims:
    """'None of our analyses ... up to second order revealed any
    vulnerability' for the 21- and 13-fresh-bit designs."""

    @pytest.mark.parametrize(
        "scheme", [SecondOrderScheme.FULL_21, SecondOrderScheme.OPT_13]
    )
    def test_second_order_designs_pass_first_order_probes(self, scheme):
        design = build_kronecker_delta(scheme, order=2)
        evaluator = LeakageEvaluator(
            design.dut, ProbingModel.GLITCH_TRANSITION, seed=1
        )
        report = evaluator.evaluate(fixed_secret=0, n_simulations=50_000)
        assert report.passed

    def test_second_order_designs_pass_pair_probes_glitch(self):
        design = build_kronecker_delta(SecondOrderScheme.FULL_21, order=2)
        evaluator = LeakageEvaluator(design.dut, ProbingModel.GLITCH, seed=1)
        report = evaluator.evaluate_pairs(
            fixed_secret=0, n_simulations=30_000, max_pairs=200
        )
        assert report.passed

    def test_naive_13_bit_reuse_leaks(self):
        """Our ablation: the obvious 13-bit mapping is insecure -- the
        paper's moral ('use evaluation tools') applies to us too."""
        design = build_kronecker_delta(
            SecondOrderScheme.OPT_13_NAIVE, order=2
        )
        evaluator = LeakageEvaluator(
            design.dut, ProbingModel.GLITCH_TRANSITION, seed=1
        )
        report = evaluator.evaluate(fixed_secret=0, n_simulations=50_000)
        assert not report.passed
