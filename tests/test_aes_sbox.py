"""Tests for the AES S-box module."""

from hypothesis import given, strategies as st

from repro.gf.gf256 import GF256
from repro.aes.sbox import (
    AFFINE_CONSTANT,
    AFFINE_MATRIX,
    INV_SBOX_TABLE,
    SBOX_TABLE,
    affine_transform,
    inv_sbox,
    sbox,
)

bytes_ = st.integers(0, 255)


class TestSboxTable:
    def test_fips_known_values(self):
        # FIPS-197 Figure 7 corners and a classic value.
        assert sbox(0x00) == 0x63
        assert sbox(0x01) == 0x7C
        assert sbox(0x53) == 0xED
        assert sbox(0xFF) == 0x16
        assert sbox(0xC9) == 0xDD

    def test_table_is_permutation(self):
        assert sorted(SBOX_TABLE) == list(range(256))

    @given(bytes_)
    def test_inverse_table(self, x):
        assert inv_sbox(sbox(x)) == x
        assert sbox(inv_sbox(x)) == x

    def test_inv_table_consistency(self):
        for y in range(256):
            assert SBOX_TABLE[INV_SBOX_TABLE[y]] == y

    @given(bytes_)
    def test_definition_matches_equation_2(self, x):
        # S(X) = A(X^-1), the paper's Eq. (2).
        assert sbox(x) == affine_transform(GF256.inverse_or_zero(x))

    def test_no_fixed_points(self):
        for x in range(256):
            assert sbox(x) != x
            assert sbox(x) != x ^ 0xFF


class TestAffine:
    def test_constant(self):
        assert affine_transform(0) == AFFINE_CONSTANT == 0x63

    @given(bytes_, bytes_)
    def test_affine_is_affine(self, a, b):
        # A(a ^ b) ^ A(0) == A(a) ^ A(b).
        lhs = affine_transform(a ^ b) ^ AFFINE_CONSTANT
        rhs = affine_transform(a) ^ affine_transform(b)
        assert lhs == rhs

    def test_matrix_rows_have_five_taps(self):
        for row in AFFINE_MATRIX:
            assert bin(row).count("1") == 5
