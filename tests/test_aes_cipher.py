"""Tests for the reference AES-128 implementation (FIPS-197)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ReproError
from repro.aes.cipher import (
    add_round_key,
    aes128_decrypt_block,
    aes128_encrypt_block,
    inv_mix_columns,
    inv_shift_rows,
    key_expansion,
    mix_columns,
    shift_rows,
)

blocks = st.binary(min_size=16, max_size=16)


class TestKnownVectors:
    def test_fips_appendix_c(self):
        pt = bytes.fromhex("00112233445566778899aabbccddeeff")
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        ct = aes128_encrypt_block(pt, key)
        assert ct.hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"

    def test_fips_appendix_b(self):
        pt = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        ct = aes128_encrypt_block(pt, key)
        assert ct.hex() == "3925841d02dc09fbdc118597196a0b32"

    def test_nist_sp800_38a_ecb_vector(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        pt = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        assert (
            aes128_encrypt_block(pt, key).hex()
            == "3ad77bb40d7a3660a89ecaf32466ef97"
        )


class TestKeyExpansion:
    def test_round_key_count_and_width(self):
        keys = key_expansion(bytes(16))
        assert len(keys) == 11
        assert all(len(k) == 16 for k in keys)

    def test_first_round_key_is_cipher_key(self):
        key = bytes(range(16))
        assert key_expansion(key)[0] == list(key)

    def test_fips_a1_last_round_key(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        last = key_expansion(key)[10]
        assert bytes(last).hex() == "d014f9a8c9ee2589e13f0cc8b6630ca6"

    def test_bad_key_length(self):
        with pytest.raises(ReproError):
            key_expansion(b"short")


class TestRoundFunctions:
    def test_shift_rows_inverse(self):
        state = list(range(16))
        assert inv_shift_rows(shift_rows(state)) == state

    def test_mix_columns_inverse(self):
        state = list(range(16))
        assert inv_mix_columns(mix_columns(state)) == state

    def test_mix_columns_fips_example(self):
        # FIPS-197 / well-known single column test vector.
        column = [0xDB, 0x13, 0x53, 0x45] + [0] * 12
        mixed = mix_columns(column)
        assert mixed[:4] == [0x8E, 0x4D, 0xA1, 0xBC]

    def test_add_round_key_is_involution(self):
        state = list(range(16))
        key = [0xA5] * 16
        assert add_round_key(add_round_key(state, key), key) == state

    def test_shift_rows_row0_fixed(self):
        state = list(range(16))
        shifted = shift_rows(state)
        assert [shifted[4 * c] for c in range(4)] == [0, 4, 8, 12]


class TestRoundTrips:
    @given(blocks, blocks)
    def test_decrypt_inverts_encrypt(self, pt, key):
        assert aes128_decrypt_block(aes128_encrypt_block(pt, key), key) == pt

    def test_block_length_checked(self):
        with pytest.raises(ReproError):
            aes128_encrypt_block(b"short", bytes(16))
        with pytest.raises(ReproError):
            aes128_decrypt_block(b"short", bytes(16))
