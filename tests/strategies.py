"""Shared hypothesis strategies: random netlists for differential testing."""

from hypothesis import strategies as st

from repro.netlist.builder import CircuitBuilder

_TWO_INPUT = ("and_", "or_", "xor", "nand", "nor", "xnor")
_ONE_INPUT = ("not_", "buf")


@st.composite
def random_circuits(draw, max_ops=24, allow_registers=True):
    """Build a random netlist; returns (netlist, input_nets, probe_nets).

    Every created net is marked as an output so nothing is dead; register
    feedback is exercised by allowing DFFs whose D input is any existing net.
    """
    n_inputs = draw(st.integers(2, 5))
    builder = CircuitBuilder("random")
    nets = [builder.input(f"in{i}") for i in range(n_inputs)]
    inputs = list(nets)
    n_ops = draw(st.integers(1, max_ops))
    kinds = list(_TWO_INPUT) + list(_ONE_INPUT) + (
        ["reg"] if allow_registers else []
    ) + ["mux"]
    for index in range(n_ops):
        kind = draw(st.sampled_from(kinds))
        pick = lambda: nets[draw(st.integers(0, len(nets) - 1))]
        if kind in _TWO_INPUT:
            net = getattr(builder, kind)(pick(), pick())
        elif kind in _ONE_INPUT:
            net = getattr(builder, kind)(pick())
        elif kind == "mux":
            net = builder.mux(pick(), pick(), pick())
        else:
            net = builder.reg(pick(), f"r{index}")
        nets.append(net)
    builder.output(nets[-1], "out")
    return builder.build(), inputs, nets


@st.composite
def masked_circuits(draw, max_masks=8, max_extra_ops=10):
    """Build a random masked netlist with a bounded randomness budget.

    Returns a :class:`DesignUnderTest` with one secret bit in two shares
    plus 1..``max_masks`` fresh mask bits, all mixed into a combinational
    chain so the widest probe's enumeration space stays small and exactly
    enumerable.  A deterministic chain touches every input (giving the
    final cell a full support, which exercises multi-shard plans); the
    extra random gates give the probe classes varied shapes.
    """
    from repro.leakage.dut import DesignUnderTest

    n_masks = draw(st.integers(1, max_masks))
    builder = CircuitBuilder("masked_random")
    s0 = builder.input("s0")
    s1 = builder.input("s1")
    masks = [builder.input(f"m{i}") for i in range(n_masks)]
    nets = [s0, s1] + list(masks)
    # chain through every input so at least one probe sees them all.
    chain = s0
    for index, net in enumerate(nets[1:]):
        kind = draw(st.sampled_from(("xor", "and_", "or_")))
        chain = getattr(builder, kind)(chain, net, name=f"chain{index}")
    nets.append(chain)
    for index in range(draw(st.integers(0, max_extra_ops))):
        kind = draw(st.sampled_from(_TWO_INPUT + _ONE_INPUT))
        pick = lambda: nets[draw(st.integers(0, len(nets) - 1))]
        if kind in _TWO_INPUT:
            nets.append(getattr(builder, kind)(pick(), pick(), name=f"extra{index}"))
        else:
            nets.append(getattr(builder, kind)(pick(), name=f"extra{index}"))
    builder.output(nets[-1], "out")
    netlist = builder.build()
    return DesignUnderTest(
        netlist=netlist,
        share_buses=[[s0], [s1]],
        mask_bits=list(masks),
        latency=0,
        metadata={"design": "masked_random"},
    )


@st.composite
def input_sequences(draw, n_inputs, n_cycles_range=(1, 6)):
    """Random per-cycle scalar input assignments."""
    n_cycles = draw(st.integers(*n_cycles_range))
    return [
        [draw(st.integers(0, 1)) for _ in range(n_inputs)]
        for _ in range(n_cycles)
    ]
