"""Tests for the fault-injection netlist mutations."""

import pytest

from repro.errors import NetlistError
from repro.netlist.cells import CellType
from repro.netlist.mutate import (
    add_xor_taps,
    clone_netlist,
    dff_by_name,
    registers_to_buffers,
    rewire_fanin,
    stuck_net,
)


@pytest.fixture
def netlist(kronecker_full):
    return kronecker_full.dut.netlist


class TestClone:
    def test_clone_preserves_structure(self, netlist):
        copy = clone_netlist(netlist)
        assert copy.n_nets == netlist.n_nets
        assert copy.net_names == netlist.net_names
        assert len(copy.cells) == len(netlist.cells)
        assert copy.inputs == netlist.inputs
        assert copy.outputs == netlist.outputs
        copy.validate()

    def test_clone_is_independent(self, netlist):
        copy = clone_netlist(netlist, name="copy")
        n_cells = len(netlist.cells)
        extra = copy.add_net("extra")
        copy.add_cell(CellType.CONST0, (), extra, "extra$cell")
        assert len(netlist.cells) == n_cells
        assert copy.name == "copy"


class TestRewireFanin:
    def test_consumers_move_to_new_net(self, netlist):
        r3 = netlist.net("rand.r3")
        r1 = netlist.net("rand.r1")
        mutant = rewire_fanin(netlist, r3, r1)
        assert all(r3 not in cell.inputs for cell in mutant.cells)
        readers = [c for c in mutant.cells if r1 in c.inputs]
        original = [c for c in netlist.cells if r1 in c.inputs]
        assert len(readers) > len(original)

    def test_indices_and_names_stable(self, netlist):
        mutant = rewire_fanin(
            netlist, netlist.net("rand.r3"), netlist.net("rand.r1")
        )
        assert mutant.net_names == netlist.net_names
        assert mutant.inputs == netlist.inputs

    def test_same_net_rejected(self, netlist):
        r1 = netlist.net("rand.r1")
        with pytest.raises(NetlistError):
            rewire_fanin(netlist, r1, r1)

    def test_out_of_range_rejected(self, netlist):
        with pytest.raises(NetlistError):
            rewire_fanin(netlist, netlist.n_nets, 0)


class TestRegistersToBuffers:
    def test_matched_dffs_become_buffers(self, netlist):
        mutant = registers_to_buffers(netlist, dff_by_name(netlist, "g7."))
        n_dff_before = sum(1 for _ in netlist.dff_cells())
        n_dff_after = sum(1 for _ in mutant.dff_cells())
        assert n_dff_after < n_dff_before
        # outputs of the replaced registers are still driven (by buffers).
        mutant.validate()

    def test_no_match_raises(self, netlist):
        with pytest.raises(NetlistError):
            registers_to_buffers(netlist, dff_by_name(netlist, "nosuchreg"))


class TestStuckNet:
    def test_consumers_read_constant(self, netlist):
        r7 = netlist.net("rand.r7")
        mutant = stuck_net(netlist, r7, 0)
        assert all(r7 not in cell.inputs for cell in mutant.cells)
        assert mutant.n_nets == netlist.n_nets + 1
        const_cells = [
            c for c in mutant.cells if c.cell_type is CellType.CONST0
        ]
        assert any("stuck0" in c.name for c in const_cells)

    def test_stuck_at_one(self, netlist):
        mutant = stuck_net(netlist, netlist.net("rand.r7"), 1)
        assert any(
            c.cell_type is CellType.CONST1 and "stuck1" in c.name
            for c in mutant.cells
        )

    def test_bad_value_rejected(self, netlist):
        with pytest.raises(NetlistError):
            stuck_net(netlist, 0, 2)


class TestAddXorTaps:
    def test_taps_are_outputs(self, netlist, kronecker_full):
        dut = kronecker_full.dut
        pair = (dut.share_bit(0, 0), dut.share_bit(1, 0))
        mutant, taps = add_xor_taps(netlist, [pair])
        assert len(taps) == 1
        assert taps[0] >= netlist.n_nets
        assert taps[0] in mutant.outputs
        driver = mutant.driver(taps[0])
        assert driver.cell_type is CellType.XOR
        assert set(driver.inputs) == set(pair)

    def test_empty_pairs_rejected(self, netlist):
        with pytest.raises(NetlistError):
            add_xor_taps(netlist, [])
