"""Tests for the tower-field decomposition of GF(2^8)."""

from hypothesis import given, strategies as st

from repro.gf.gf256 import GF256
from repro.gf.tower import (
    MU,
    NU,
    TowerField,
    gf16_inverse,
    gf16_multiply,
    gf16_scale,
    gf16_square,
    gf4_inverse,
    gf4_multiply,
    gf4_scale_mu,
    gf4_square,
    tower_inverse,
    tower_multiply,
    tower_square,
    verify_isomorphism,
)

elements4 = st.integers(0, 3)
elements16 = st.integers(0, 15)
elements256 = st.integers(0, 255)


class TestGf4:
    def test_multiplication_table_sane(self):
        assert gf4_multiply(0, 3) == 0
        assert gf4_multiply(1, 3) == 3
        # W * W = W + 1
        assert gf4_multiply(2, 2) == 3

    @given(elements4, elements4, elements4)
    def test_associativity(self, a, b, c):
        assert gf4_multiply(gf4_multiply(a, b), c) == gf4_multiply(
            a, gf4_multiply(b, c)
        )

    @given(elements4)
    def test_square_is_inverse_for_nonzero(self, a):
        if a:
            assert gf4_multiply(a, gf4_square(a)) == 1
        assert gf4_inverse(0) == 0

    @given(elements4)
    def test_scale_mu_matches_multiplication(self, a):
        assert gf4_scale_mu(a) == gf4_multiply(a, MU)

    @given(elements4)
    def test_cube_is_one_for_nonzero(self, a):
        if a:
            assert gf4_multiply(a, gf4_multiply(a, a)) == 1


class TestGf16:
    @given(elements16, elements16)
    def test_commutativity(self, a, b):
        assert gf16_multiply(a, b) == gf16_multiply(b, a)

    @given(elements16, elements16, elements16)
    def test_distributivity(self, a, b, c):
        lhs = gf16_multiply(a, b ^ c)
        rhs = gf16_multiply(a, b) ^ gf16_multiply(a, c)
        assert lhs == rhs

    def test_inverse_exhaustive(self):
        assert gf16_inverse(0) == 0
        for a in range(1, 16):
            assert gf16_multiply(a, gf16_inverse(a)) == 1

    @given(elements16)
    def test_square_matches_multiply(self, a):
        assert gf16_square(a) == gf16_multiply(a, a)

    @given(elements16)
    def test_order_divides_15(self, a):
        if a:
            power = a
            for _ in range(14):
                power = gf16_multiply(power, a)
            assert power == 1  # a^15 == 1

    @given(elements16)
    def test_scale_nu_is_linear(self, a):
        b = 0b0110
        lhs = gf16_scale(a ^ b, NU)
        rhs = gf16_scale(a, NU) ^ gf16_scale(b, NU)
        assert lhs == rhs


class TestTowerField:
    def test_nu_makes_extension_irreducible(self):
        image = {gf16_square(z) ^ z for z in range(16)}
        assert NU not in image

    def test_isomorphism_is_homomorphism(self):
        assert verify_isomorphism()

    def test_roundtrip_mapping(self):
        for a in range(256):
            assert TowerField.from_tower(TowerField.to_tower(a)) == a

    def test_maps_identity_elements(self):
        assert TowerField.to_tower(0) == 0
        assert TowerField.to_tower(1) == 1

    def test_inverse_all_values(self):
        for a in range(256):
            expected = GF256.inverse_or_zero(a)
            assert TowerField.aes_inverse_via_tower(a) == expected

    @given(elements256, elements256)
    def test_tower_multiply_matches_aes_field(self, a, b):
        lhs = TowerField.to_tower(GF256.multiply(a, b))
        rhs = tower_multiply(TowerField.to_tower(a), TowerField.to_tower(b))
        assert lhs == rhs

    @given(elements256)
    def test_tower_square(self, a):
        assert tower_square(a) == tower_multiply(a, a)

    def test_tower_inverse_exhaustive(self):
        assert tower_inverse(0) == 0
        for a in range(1, 256):
            assert tower_multiply(a, tower_inverse(a)) == 1
