"""Tests for Verilog import and export/import round-trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.kronecker import build_kronecker_delta
from repro.core.optimizations import RandomnessScheme
from repro.errors import NetlistError
from repro.netlist.simulate import ScalarSimulator
from repro.netlist.verilog import to_verilog
from repro.netlist.verilog_import import from_verilog

from tests.strategies import input_sequences, random_circuits


class TestBasicParsing:
    def test_simple_module(self):
        text = """
        module t (a, b, y);
          input a;
          input b;
          output y;
          wire n;
          and g0 (n, a, b);
          not g1 (y, n);
        endmodule
        """
        netlist = from_verilog(text)
        assert netlist.name == "t"
        assert len(netlist.inputs) == 2
        sim = ScalarSimulator(netlist)
        values = sim.step({netlist.net("a"): 1, netlist.net("b"): 1})
        assert values[netlist.net("y")] == 0

    def test_constants_and_mux(self):
        text = """
        module t (s, y);
          input s;
          output y;
          wire one;
          wire zero;
          assign one = 1'b1;
          assign zero = 1'b0;
          assign y = s ? one : zero;
        endmodule
        """
        netlist = from_verilog(text)
        sim = ScalarSimulator(netlist)
        assert sim.step({netlist.net("s"): 1})[netlist.net("y")] == 1
        assert sim.step({netlist.net("s"): 0})[netlist.net("y")] == 0

    def test_register_block(self):
        text = """
        module t (clk, d, q);
          input clk;
          input d;
          output q;
          reg state;
          always @(posedge clk) begin
            state <= d;
          end
          assign q = state;
        endmodule
        """
        netlist = from_verilog(text)
        sim = ScalarSimulator(netlist)
        first = sim.step({netlist.net("d"): 1})
        assert first[netlist.net("q")] == 0
        second = sim.step({netlist.net("d"): 0})
        assert second[netlist.net("q")] == 1

    def test_comments_stripped(self):
        text = """
        // a comment
        module t (a, y); /* block
        comment */
          input a;
          output y;
          buf g0 (y, a);
        endmodule
        """
        assert from_verilog(text).name == "t"

    def test_missing_module_rejected(self):
        with pytest.raises(NetlistError):
            from_verilog("wire x;")

    def test_missing_endmodule_rejected(self):
        with pytest.raises(NetlistError):
            from_verilog("module t (a); input a;")

    def test_unsupported_statement_rejected(self):
        text = "module t (a); input a; initial a = 0; endmodule"
        with pytest.raises(NetlistError):
            from_verilog(text)


class TestRoundTrip:
    @settings(deadline=None, max_examples=25)
    @given(data=st.data())
    def test_random_circuits_roundtrip(self, data):
        nl, inputs, nets = data.draw(random_circuits(max_ops=15))
        sequence = data.draw(input_sequences(len(inputs), (1, 4)))
        recovered = from_verilog(to_verilog(nl))

        sim_a = ScalarSimulator(nl)
        sim_b = ScalarSimulator(recovered)
        out_a_nets = nl.outputs
        out_b_nets = recovered.outputs
        in_b = [
            recovered.net(_sanitized(nl, n)) for n in inputs
        ]
        for cycle_values in sequence:
            va = sim_a.step(dict(zip(inputs, cycle_values)))
            vb = sim_b.step(dict(zip(in_b, cycle_values)))
            assert [va[n] for n in out_a_nets] == [
                vb[n] for n in out_b_nets
            ]

    def test_kronecker_roundtrip_structure(self):
        design = build_kronecker_delta(RandomnessScheme.DEMEYER_EQ6)
        recovered = from_verilog(to_verilog(design.netlist))
        assert len(recovered.cells) == len(design.netlist.cells)
        assert sum(1 for _ in recovered.dff_cells()) == sum(
            1 for _ in design.netlist.dff_cells()
        )
        assert len(recovered.inputs) == len(design.netlist.inputs)


def _sanitized(netlist, net):
    from repro.netlist.verilog import _sanitize

    return _sanitize(netlist.net_name(net))
