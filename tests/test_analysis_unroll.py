"""Tests for ANF extraction from sequential netlists."""

from hypothesis import given, settings, strategies as st

from repro.analysis.unroll import AnfUnroller
from repro.netlist.builder import CircuitBuilder
from repro.netlist.simulate import ScalarSimulator

from tests.strategies import input_sequences, random_circuits


class TestBasics:
    def test_input_is_variable(self):
        b = CircuitBuilder("t")
        a = b.input("a")
        b.output(a)
        unroller = AnfUnroller(b.build())
        expr = unroller.expression(a, 2)
        assert str(expr) == "a@2"

    def test_register_shifts_cycle(self):
        b = CircuitBuilder("t")
        a = b.input("a")
        q = b.reg(a, "q")
        b.output(q)
        unroller = AnfUnroller(b.build())
        assert str(unroller.expression(q, 3)) == "a@2"

    def test_register_reset_is_zero(self):
        b = CircuitBuilder("t")
        a = b.input("a")
        q = b.reg(a, "q")
        b.output(q)
        unroller = AnfUnroller(b.build())
        assert unroller.expression(q, 0).is_zero

    def test_gate_expressions(self):
        b = CircuitBuilder("t")
        x = b.input("x")
        y = b.input("y")
        g = b.and_(x, y, "g")
        n = b.not_(g, "n")
        b.output(n)
        unroller = AnfUnroller(b.build())
        assert str(unroller.expression(g, 0)) == "x@0*y@0"
        assert str(unroller.expression(n, 0)) == "1 + x@0*y@0"

    def test_memoization_returns_same_object(self):
        b = CircuitBuilder("t")
        x = b.input("x")
        g = b.not_(x, "g")
        b.output(g)
        unroller = AnfUnroller(b.build())
        assert unroller.expression(g, 1) is unroller.expression(g, 1)


class TestDifferential:
    @settings(deadline=None, max_examples=25)
    @given(data=st.data())
    def test_matches_scalar_simulation(self, data):
        """Unrolled ANF evaluated on input history == simulator output."""
        nl, inputs, nets = data.draw(
            random_circuits(max_ops=12)
        )
        sequence = data.draw(input_sequences(len(inputs), (1, 4)))
        n_cycles = len(sequence)

        sim = ScalarSimulator(nl)
        history = []
        for cycle in range(n_cycles):
            history.append(
                sim.step(dict(zip(inputs, sequence[cycle])))
            )

        unroller = AnfUnroller(nl)
        final = n_cycles - 1
        assignment = {}
        for cycle in range(n_cycles):
            for i, net in enumerate(inputs):
                assignment[unroller.input_variable(net, cycle)] = sequence[
                    cycle
                ][i]
        for net in nets:
            expr = unroller.expression(net, final)
            missing = {
                v: 0 for v in expr.variables() if v not in assignment
            }  # history before cycle 0 is reset zeros handled by unroller
            assert not missing  # all variables are within the window
            assert expr.evaluate(assignment) == history[final][net]
