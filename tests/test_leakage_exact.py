"""Tests for the exact (SILVER-style) distribution analyzer.

These are the deterministic reproductions of the paper's core verdicts: no
Monte-Carlo noise, every randomness assignment enumerated.
"""

import numpy as np
import pytest

from repro.core.kronecker import build_kronecker_delta
from repro.core.optimizations import RandomnessScheme
from repro.errors import ExactAnalysisInfeasible
from repro.leakage.exact import ExactAnalyzer, _enum_pattern
from repro.leakage.model import ProbingModel
from repro.netlist.simulate import unpack_lanes


def v_node_results(scheme, nodes=("v1",)):
    design = build_kronecker_delta(scheme)
    analyzer = ExactAnalyzer(design.dut)
    results = {}
    for name in nodes:
        pc = analyzer.probe_class_for_net(design.v_nodes[name])
        results[name] = analyzer.analyze_probe_class(pc)
    return results


class TestEnumPattern:
    @pytest.mark.parametrize("index", [0, 1, 3, 5, 6, 7, 10])
    def test_pattern_bits(self, index):
        n_lanes = 1 << 11
        words = _enum_pattern(index, n_lanes // 64)
        bits = unpack_lanes(words, n_lanes)
        expected = (np.arange(n_lanes) >> index) & 1
        assert (bits == expected).all()


class TestPaperVerdictsExact:
    """Section III / IV verdicts, exactly."""

    def test_full_scheme_v1_secure(self):
        result = v_node_results(RandomnessScheme.FULL)["v1"]
        assert not result.leaking
        assert result.tv_fixed_vs_random == 0.0
        assert result.n_distinct_distributions == 1

    def test_demeyer_eq6_v_nodes_leak(self):
        results = v_node_results(
            RandomnessScheme.DEMEYER_EQ6, nodes=("v1", "v2", "v3", "v4")
        )
        for name, result in results.items():
            assert result.leaking, name
            assert result.tv_fixed_vs_random > 0.0

    def test_single_reuse_r1_r3_leaks(self):
        result = v_node_results(RandomnessScheme.FIRST_LAYER_R1R3)["v1"]
        assert result.leaking

    def test_second_layer_reuse_leaks(self):
        result = v_node_results(RandomnessScheme.SECOND_LAYER_R5R6)["v1"]
        assert result.leaking

    def test_proposed_eq9_v1_secure(self):
        result = v_node_results(RandomnessScheme.PROPOSED_EQ9)["v1"]
        assert not result.leaking

    def test_transition_solution_glitch_secure(self):
        result = v_node_results(RandomnessScheme.TRANSITION_R7_EQ_R3)["v1"]
        assert not result.leaking


class TestFullSweep:
    def test_eq6_leaks_localized_to_g7(self):
        """Only the G7 region shows exact leakage, as the paper reports."""
        design = build_kronecker_delta(RandomnessScheme.DEMEYER_EQ6)
        analyzer = ExactAnalyzer(design.dut, max_enum_bits=23)
        report = analyzer.analyze()
        assert not report.passed
        for result in report.leaking_results:
            assert "g7" in result.probe_names

    def test_full_scheme_entirely_secure(self):
        design = build_kronecker_delta(RandomnessScheme.FULL)
        analyzer = ExactAnalyzer(design.dut, max_enum_bits=23)
        report = analyzer.analyze()
        assert report.passed
        assert not report.infeasible  # all probes enumerable at this size
        text = report.format_summary()
        assert "SECURE" in text


class TestBudget:
    def test_infeasible_probe_raises(self):
        design = build_kronecker_delta(RandomnessScheme.FULL)
        analyzer = ExactAnalyzer(design.dut, max_enum_bits=4)
        pc = analyzer.probe_class_for_net(design.v_nodes["v1"])
        with pytest.raises(ExactAnalysisInfeasible):
            analyzer.analyze_probe_class(pc)

    def test_infeasible_reported_not_raised_in_sweep(self):
        design = build_kronecker_delta(RandomnessScheme.FULL)
        analyzer = ExactAnalyzer(design.dut, max_enum_bits=4)
        report = analyzer.analyze()
        assert report.infeasible


class TestResultMetadata:
    def test_random_bit_counts_recorded(self):
        result = v_node_results(RandomnessScheme.FULL)["v1"]
        # 8 share bits + r1..r4 + r5, r6 = 14 free random bits.
        assert result.n_random_bits == 14
        assert result.n_secret_bits == 8

    def test_format_row(self):
        result = v_node_results(RandomnessScheme.DEMEYER_EQ6)["v1"]
        row = result.format_row()
        assert "LEAK" in row
        assert "tv(fixed,rand)" in row
