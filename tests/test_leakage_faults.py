"""Tests for the fault-injection self-validation of the evaluator."""

import pytest

from repro.leakage.evaluator import LeakageEvaluator
from repro.leakage.faults import (
    FaultSpec,
    builtin_faults,
    run_self_check,
)

N_SIMS = 20_000


class TestBuiltinFaults:
    def test_names_unique(self):
        names = [spec.name for spec in builtin_faults()]
        assert len(names) == len(set(names))

    def test_clean_and_control_present(self):
        specs = {spec.name: spec for spec in builtin_faults()}
        assert not specs["clean-full"].expect_leak
        assert specs["control-eq6"].expect_leak

    def test_mutants_preserve_protocol_indices(self):
        specs = {spec.name: spec for spec in builtin_faults()}
        clean = specs["clean-full"].build()
        for name in ("drop-dom-register", "alias-fresh-masks", "stuck-mask"):
            mutant = specs[name].build()
            assert mutant.share_buses == clean.share_buses
            assert mutant.mask_bits == clean.mask_bits
            for bus in mutant.share_buses:
                for net in bus:
                    assert (
                        mutant.netlist.net_name(net)
                        == clean.netlist.net_name(net)
                    )

    def test_mutant_netlists_validate(self):
        for spec in builtin_faults():
            spec.build().netlist.validate()


class TestSelfCheck:
    def test_coverage_complete(self):
        matrix = run_self_check(n_simulations=N_SIMS, seed=0)
        assert matrix.coverage_complete, matrix.format_table()
        assert not matrix.misses
        names = {outcome.name for outcome in matrix.outcomes}
        assert names == {spec.name for spec in builtin_faults()}

    def test_clean_design_runs_full_budget(self):
        matrix = run_self_check(n_simulations=N_SIMS, seed=0)
        by_name = {o.name: o for o in matrix.outcomes}
        clean = by_name["clean-full"]
        assert clean.status == "complete"
        assert clean.n_simulations == N_SIMS
        # leaky specs stop early once the evidence is decisive.
        assert any(
            o.status == "truncated:early-stop"
            for o in matrix.outcomes
            if o.expect_leak
        )

    def test_to_dict_and_table(self):
        matrix = run_self_check(n_simulations=N_SIMS, seed=0)
        data = matrix.to_dict()
        assert data["coverage_complete"] is True
        assert len(data["outcomes"]) == len(builtin_faults())
        table = matrix.format_table()
        assert "COVERAGE COMPLETE" in table
        assert "stuck-mask" in table

    def test_parallel_path_matches_serial(self):
        """The coverage matrix through workers=2 must equal the serial one
        verdict for verdict AND statistic for statistic -- this is the
        self-check validating the executor, not just the evaluator."""
        specs = {spec.name: spec for spec in builtin_faults()}
        subset = [specs["clean-full"], specs["control-eq6"]]
        serial = run_self_check(
            n_simulations=N_SIMS, seed=0, faults=subset, workers=1
        )
        parallel = run_self_check(
            n_simulations=N_SIMS, seed=0, faults=subset, workers=2
        )
        assert parallel.coverage_complete, parallel.format_table()
        for a, b in zip(serial.outcomes, parallel.outcomes):
            assert a.name == b.name
            assert a.detected_leak == b.detected_leak
            assert a.max_mlog10p == b.max_mlog10p
            assert a.n_simulations == b.n_simulations
            assert a.status == b.status

    def test_engines_agree_on_verdicts(self):
        specs = {spec.name: spec for spec in builtin_faults()}
        subset = [specs["control-eq6"]]
        compiled = run_self_check(
            n_simulations=N_SIMS, seed=0, faults=subset, engine="compiled"
        )
        bitsliced = run_self_check(
            n_simulations=N_SIMS, seed=0, faults=subset, engine="bitsliced"
        )
        assert (
            compiled.outcomes[0].max_mlog10p
            == bitsliced.outcomes[0].max_mlog10p
        )

    def test_undetectable_expectation_is_reported_as_miss(self):
        """A spec expecting a leak from the clean design must be a MISS."""
        specs = {spec.name: spec for spec in builtin_faults()}
        bogus = FaultSpec(
            name="bogus-expectation",
            description="clean design wrongly expected to leak",
            expect_leak=True,
            build=specs["clean-full"].build,
        )
        matrix = run_self_check(n_simulations=N_SIMS, faults=[bogus])
        assert not matrix.coverage_complete
        assert matrix.misses[0].name == "bogus-expectation"
        assert "INCOMPLETE" in matrix.format_table()


class TestMutantLeakMechanics:
    """Each mutant leaks through the specific probe the docstring claims."""

    def _worst(self, spec_name):
        specs = {spec.name: spec for spec in builtin_faults()}
        evaluator = LeakageEvaluator(specs[spec_name].build(), seed=0)
        report = evaluator.evaluate(n_simulations=N_SIMS)
        assert not report.passed
        return report.worst

    def test_drop_register_leaks_at_output(self):
        worst = self._worst("drop-dom-register")
        assert "z[" in worst.probe_names or "g7" in worst.probe_names

    def test_stuck_mask_leaks_at_g7(self):
        worst = self._worst("stuck-mask")
        assert "g7" in worst.probe_names or "z[" in worst.probe_names

    def test_bypass_leaks_at_tap(self):
        worst = self._worst("bypass-kronecker")
        assert "bypass" in worst.probe_names
