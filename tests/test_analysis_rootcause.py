"""Tests reproducing the paper's Section III derivations symbolically."""

import pytest

from repro.analysis.anf import BitPoly
from repro.analysis.rootcause import (
    eq8_cancellation_witness,
    kronecker_layer_equations,
    v1_distribution_by_secret,
    v1_leaks,
    v1_observation_anf,
)
from repro.analysis.walsh import depends_on_conditioning
from repro.core.optimizations import RandomnessScheme


def expected_y0_share0():
    """y0^0 = (NOT x0^0)(NOT x1) xor r1, expanded to ANF.

    In circuit variables: (1 + x0[0]@0)(1 + X1 + x0[1]@0 + x0[1]@0) ... the
    complement of the unshared bit x1 is 1 + X1 once share 1 is substituted
    and the share-0 part cancels against the inverted share.
    """
    n0 = BitPoly.one() ^ BitPoly.var("x0[0]@0")
    n1_unshared = BitPoly.one() ^ BitPoly.var("X1")
    return (n0 & n1_unshared) ^ BitPoly.var("rand.r1@0")


class TestEquation7:
    def test_y0_share0_matches_simplified_form(self):
        """The netlist's y0^0 equals the Eq. (5)/(7) simplified expression.

        Caveat: the complemented unshared bit has its share-0 component in
        the share-0 output, so the recovered ANF is the DOM share equation
        b_x^0 * y xor r with b_x = NOT-share and y the unshared complement.
        """
        equations = kronecker_layer_equations(RandomnessScheme.FULL)
        assert equations["y0^0"] == expected_y0_share0()

    def test_shares_xor_to_unshared_and(self):
        """y0^0 xor y0^1 == (NOT x0)(NOT x1) with masks cancelled."""
        equations = kronecker_layer_equations(RandomnessScheme.FULL)
        combined = equations["y0^0"] ^ equations["y0^1"]
        # substitute share-0 randomness away: result must not contain masks
        assert not any(
            v.startswith("rand.") for v in combined.variables()
        )
        # and must equal (1+x0)(1+x1) on the unshared bits
        expected = (BitPoly.one() ^ BitPoly.var("X0")) & (
            BitPoly.one() ^ BitPoly.var("X1")
        )
        # combined still contains share-0 variables that cancel pairwise;
        # evaluate both on all assignments of the remaining variables.
        variables = sorted(combined.variables() | expected.variables())
        from itertools import product

        for values in product((0, 1), repeat=len(variables)):
            assignment = dict(zip(variables, values))
            assert combined.evaluate(assignment) == expected.evaluate(
                assignment
            )

    def test_all_layer1_equations_have_expected_masks(self):
        equations = kronecker_layer_equations(RandomnessScheme.FULL)
        for j, gate_mask in enumerate(("r1", "r2", "r3", "r4")):
            for share in range(2):
                variables = equations[f"y{j}^{share}"].variables()
                assert f"rand.{gate_mask}@0" in variables

    def test_w_equations_contain_layer2_masks(self):
        equations = kronecker_layer_equations(RandomnessScheme.FULL)
        assert "rand.r5@1" in equations["w0^0"].variables()
        assert "rand.r6@1" in equations["w1^0"].variables()


class TestEquation8:
    def test_full_scheme_keeps_masks(self):
        cancelled, poly = eq8_cancellation_witness(RandomnessScheme.FULL)
        assert not cancelled
        assert "rand.r1@0" in poly.variables()
        assert "rand.r3@0" in poly.variables()

    def test_r1_eq_r3_cancels_masks(self):
        cancelled, poly = eq8_cancellation_witness(
            RandomnessScheme.FIRST_LAYER_R1R3
        )
        assert cancelled
        # The residue is exactly the unmasked relation of Eq. (8):
        # terms in x0^0, x4^0 and the secret bits X1, X5 only.
        assert poly.variables() <= {
            "x0[0]@0",
            "x0[4]@0",
            "X1",
            "X5",
        }

    def test_demeyer_eq6_cancels_masks(self):
        cancelled, _ = eq8_cancellation_witness(RandomnessScheme.DEMEYER_EQ6)
        assert cancelled


class TestV1Distribution:
    def test_flawed_schemes_leak(self):
        assert v1_leaks(RandomnessScheme.FIRST_LAYER_R1R3)
        assert v1_leaks(RandomnessScheme.DEMEYER_EQ6)

    def test_secure_schemes_do_not_leak_via_x1_x5(self):
        assert not v1_leaks(RandomnessScheme.FULL)
        assert not v1_leaks(RandomnessScheme.PROPOSED_EQ9)

    def test_r5_r6_reuse_leaks_via_x2_x6(self):
        """Section IV's counter-example leaks through the second layer."""
        dists = v1_distribution_by_secret(
            RandomnessScheme.SECOND_LAYER_R5R6, secret_bits=("X2", "X6")
        )
        assert depends_on_conditioning(dists)

    def test_observation_is_four_registers(self):
        observation = v1_observation_anf(RandomnessScheme.FULL)
        assert len(observation) == 4

    def test_distribution_structure_when_leaking(self):
        dists = v1_distribution_by_secret(RandomnessScheme.FIRST_LAYER_R1R3)
        # the x1 = x5 = 0 case differs from x1 = x5 = 1
        assert dists[(0, 0)] != dists[(1, 1)]
