"""Tests for report structures and serialization."""

import json

from repro.leakage.report import SCHEMA_VERSION, LeakageReport, ProbeResult


def make_report(passed=True):
    report = LeakageReport(
        design="demo",
        model="glitch-extended probing model",
        fixed_secret=0,
        n_simulations=1000,
        threshold=5.0,
    )
    report.results.append(
        ProbeResult(
            probe_names="safe_probe",
            support_names=("a", "b"),
            n_samples=2000,
            g_statistic=3.0,
            dof=3,
            mlog10p=0.7,
            leaking=False,
        )
    )
    if not passed:
        report.results.append(
            ProbeResult(
                probe_names="bad_probe",
                support_names=("c",),
                n_samples=2000,
                g_statistic=120.0,
                dof=3,
                mlog10p=24.0,
                leaking=True,
            )
        )
    return report


class TestReportQueries:
    def test_passed_property(self):
        assert make_report(passed=True).passed
        assert not make_report(passed=False).passed

    def test_worst_and_max(self):
        report = make_report(passed=False)
        assert report.worst.probe_names == "bad_probe"
        assert report.max_mlog10p == 24.0

    def test_empty_report(self):
        report = LeakageReport("d", "m", 0, 0, 5.0)
        assert report.passed
        assert report.worst is None
        assert report.max_mlog10p == 0.0

    def test_format_rows(self):
        text = make_report(passed=False).format_summary()
        assert "FAIL" in text
        assert "bad_probe" in text
        assert text.index("bad_probe") < text.index("safe_probe")


class TestSerialization:
    def test_to_dict_shape(self):
        data = make_report(passed=False).to_dict()
        assert data["passed"] is False
        assert data["n_probe_classes"] == 2
        assert data["results"][0]["probe_names"] == "bad_probe"

    def test_to_json_roundtrip(self):
        text = make_report().to_json()
        data = json.loads(text)
        assert data["design"] == "demo"
        assert data["max_mlog10p"] == 0.7

    def test_top_limits_results(self):
        data = make_report(passed=False).to_dict(top=1)
        assert len(data["results"]) == 1
        assert data["n_probe_classes"] == 2

    def test_wire_format_is_versioned(self):
        """The service wire format carries schema_version everywhere."""
        assert make_report().to_dict()["schema_version"] == SCHEMA_VERSION
        assert (
            json.loads(make_report().to_json())["schema_version"]
            == SCHEMA_VERSION
        )

    def test_self_check_matrix_is_versioned(self):
        from repro.leakage.faults import SelfCheckMatrix

        matrix = SelfCheckMatrix(threshold=5.0)
        assert matrix.to_dict()["schema_version"] == SCHEMA_VERSION
