"""Tests for the distributed campaign fabric (coordinator, workers, fleet).

The load-bearing claims under test:

* the lease protocol is safe -- expiry reissues, duplicate completions are
  discarded, corrupt payloads requeue, poison items surface as typed
  errors instead of livelocking;
* a campaign (and an exact sweep) distributed across workers produces
  reports **byte-identical** to serial execution, for any worker count,
  interleaving, and under mid-campaign worker death;
* the HTTP ``/v1/fleet/`` routes carry the same protocol end to end, so
  external ``repro worker`` daemons are interchangeable with the embedded
  local workers.
"""

import base64
import json
import threading
import time
import urllib.request

import pytest

from repro.errors import FleetInterrupted, ServiceError
from repro.leakage.campaign import EvaluationCampaign
from repro.service import EvaluationService, JobSpec
from repro.service.fleet import (
    FleetCoordinator,
    FleetExecutor,
    decode_arrays,
    encode_arrays,
    fleet_exact_dispatch,
)
from repro.service.runner import evaluator_for
from repro.service.worker import FleetWorker, HttpTransport, LocalTransport

import numpy as np

#: Small enough for seconds-scale tests, big enough for several chunks.
SMALL_SPEC = {
    "design": "kronecker",
    "scheme": "eq6",
    "n_simulations": 6_000,
    "chunk_size": 2_000,
    "seed": 7,
}


def _serial_report_bytes(spec_dict):
    spec = JobSpec.from_dict(dict(spec_dict))
    campaign = EvaluationCampaign(
        evaluator_for(spec), spec.campaign_config(default_chunking=True)
    )
    return campaign.run().to_json(top=None)


def _fleet_report_bytes(spec_dict, coordinator, job_id="job-under-test"):
    spec = JobSpec.from_dict(dict(spec_dict))
    executor = FleetExecutor(coordinator, job_id, spec.to_dict())
    campaign = EvaluationCampaign(
        evaluator_for(spec),
        spec.campaign_config(default_chunking=True),
        executor=executor,
    )
    try:
        return campaign.run().to_json(top=None)
    finally:
        executor.close()


def _start_workers(coordinator, n, stop, poll_interval=0.02):
    threads = []
    for index in range(n):
        worker = FleetWorker(
            LocalTransport(coordinator),
            worker_id=f"test-worker-{index}",
            poll_interval=poll_interval,
        )
        thread = threading.Thread(
            target=worker.run, args=(stop,), daemon=True
        )
        thread.start()
        threads.append(thread)
    return threads


def _npz_payload(**arrays):
    return {"npz": encode_arrays(arrays)}


class TestCodec:
    def test_round_trip(self):
        arrays = {
            "keys": np.array([1, 5, 9], dtype=np.uint64),
            "counts": np.array([[2, 3, 4]], dtype=np.int64),
        }
        decoded = decode_arrays(encode_arrays(arrays))
        assert set(decoded) == {"keys", "counts"}
        assert np.array_equal(decoded["keys"], arrays["keys"])
        assert np.array_equal(decoded["counts"], arrays["counts"])

    def test_rejects_rot(self):
        with pytest.raises(ServiceError):
            decode_arrays("not base64 at all!!!")
        with pytest.raises(ServiceError):
            decode_arrays(
                base64.b64encode(b'{"not":"an npz"}').decode("ascii")
            )


class TestCoordinatorProtocol:
    def _coordinator(self, **kwargs):
        kwargs.setdefault("lease_seconds", 5.0)
        coord = FleetCoordinator(**kwargs)
        coord.register_job("j1", dict(SMALL_SPEC))
        return coord

    def test_lease_complete_wait(self):
        coord = self._coordinator()
        (item_id,) = coord.submit_items("j1", [{"kind": "blocks"}])
        work = coord.lease("w1")
        assert work["item_id"] == item_id
        assert work["spec"]["design"] == "kronecker"
        assert coord.lease("w1") is None  # nothing else pending
        body = _npz_payload(x=np.arange(3))
        result = coord.complete(work["lease_id"], "w1", body)
        assert result == {"ok": True, "duplicate": False}
        results = coord.wait([item_id])
        assert np.array_equal(results[item_id]["arrays"]["x"], np.arange(3))

    def test_expired_lease_reissues_item(self):
        coord = self._coordinator(lease_seconds=0.05)
        (item_id,) = coord.submit_items("j1", [{"kind": "blocks"}])
        first = coord.lease("doomed")
        assert first["item_id"] == item_id
        time.sleep(0.1)
        second = coord.lease("survivor")
        assert second is not None and second["item_id"] == item_id
        assert coord.counters["leases_expired"] == 1

    def test_heartbeat_keeps_lease_alive(self):
        coord = self._coordinator(lease_seconds=0.15)
        coord.submit_items("j1", [{"kind": "blocks"}])
        work = coord.lease("beater")
        for _ in range(4):
            time.sleep(0.05)
            assert coord.heartbeat(work["lease_id"], "beater")
        # Renewed throughout, so nothing expired or was reissued.
        assert coord.counters["leases_expired"] == 0
        assert coord.lease("other") is None

    def test_duplicate_completion_discarded(self):
        coord = self._coordinator(lease_seconds=0.05)
        (item_id,) = coord.submit_items("j1", [{"kind": "blocks"}])
        slow = coord.lease("slow")
        time.sleep(0.1)  # slow's lease expires
        fast = coord.lease("fast")
        body = _npz_payload(x=np.arange(2))
        assert coord.complete(fast["lease_id"], "fast", body)["ok"]
        late = coord.complete(slow["lease_id"], "slow", body)
        assert late["duplicate"] is True
        assert coord.counters["items_completed"] == 1
        assert coord.counters["duplicate_results"] == 1
        coord.wait([item_id])

    def test_corrupt_payload_requeues(self):
        coord = self._coordinator()
        (item_id,) = coord.submit_items("j1", [{"kind": "blocks"}])
        work = coord.lease("w1")
        result = coord.complete(
            work["lease_id"],
            "w1",
            {"npz": base64.b64encode(b"garbage").decode("ascii")},
        )
        assert result["ok"] is False and result["requeued"] is True
        assert coord.counters["bad_results"] == 1
        retry = coord.lease("w1")
        assert retry["item_id"] == item_id

    def test_worker_fail_requeues(self):
        coord = self._coordinator()
        (item_id,) = coord.submit_items("j1", [{"kind": "blocks"}])
        work = coord.lease("w1")
        coord.fail(work["lease_id"], "w1", "engine exploded")
        assert coord.counters["worker_failures"] == 1
        assert coord.lease("w2")["item_id"] == item_id

    def test_poison_item_surfaces_as_typed_error(self):
        coord = self._coordinator(lease_seconds=0.02, max_attempts=2)
        (item_id,) = coord.submit_items("j1", [{"kind": "blocks"}])
        for _ in range(2):
            work = coord.lease("crashy")
            assert work is not None
            time.sleep(0.05)  # let the lease expire: one attempt burned
        with pytest.raises(ServiceError, match="after 2 attempts"):
            coord.wait([item_id], poll=0.01)

    def test_release_job_interrupts_wait(self):
        coord = self._coordinator()
        (item_id,) = coord.submit_items("j1", [{"kind": "blocks"}])
        threading.Timer(0.05, coord.release_job, args=("j1",)).start()
        with pytest.raises(FleetInterrupted):
            coord.wait([item_id], poll=0.01)

    def test_should_stop_interrupts_wait(self):
        coord = self._coordinator()
        (item_id,) = coord.submit_items("j1", [{"kind": "blocks"}])
        with pytest.raises(FleetInterrupted):
            coord.wait([item_id], should_stop=lambda: True, poll=0.01)

    def test_unregistered_job_rejected(self):
        coord = FleetCoordinator()
        with pytest.raises(ServiceError):
            coord.submit_items("ghost", [{"kind": "blocks"}])


class TestFleetBitIdentity:
    def test_campaign_identical_across_worker_counts(self):
        golden = _serial_report_bytes(SMALL_SPEC)
        for n_workers in (1, 3):
            coord = FleetCoordinator(lease_seconds=10.0)
            stop = threading.Event()
            _start_workers(coord, n_workers, stop)
            try:
                assert _fleet_report_bytes(SMALL_SPEC, coord) == golden
            finally:
                stop.set()

    def test_campaign_identical_under_worker_death(self):
        """A worker that leases a slice and dies costs time, not bytes."""
        golden = _serial_report_bytes(SMALL_SPEC)
        coord = FleetCoordinator(lease_seconds=0.2)
        stop = threading.Event()

        # A "worker" that takes one lease and never comes back (SIGKILL
        # equivalent at the protocol level: no heartbeat, no completion).
        grabbed = threading.Event()

        def vampire():
            while not grabbed.is_set():
                if coord.lease("vampire") is not None:
                    grabbed.set()
                    return
                time.sleep(0.01)

        threading.Thread(target=vampire, daemon=True).start()
        _start_workers(coord, 2, stop)
        try:
            assert _fleet_report_bytes(SMALL_SPEC, coord) == golden
        finally:
            stop.set()
        assert grabbed.is_set()
        assert coord.counters["leases_expired"] >= 1

    def test_exact_identical_through_fleet(self):
        from repro.core.kronecker import build_kronecker_delta
        from repro.core.optimizations import RandomnessScheme
        from repro.leakage.certify import run_exact_analysis

        design = build_kronecker_delta(RandomnessScheme.DEMEYER_EQ6)
        kwargs = dict(max_enum_bits=23, shard_lane_bits=12)
        golden = run_exact_analysis(design.dut, **kwargs).to_json(top=None)

        spec = dict(SMALL_SPEC, mode="exact", **kwargs)
        spec.pop("n_simulations"), spec.pop("chunk_size")
        coord = FleetCoordinator(lease_seconds=10.0)
        coord.register_job("jx", JobSpec.from_dict(spec).to_dict())
        stop = threading.Event()
        _start_workers(coord, 2, stop)
        try:
            report = run_exact_analysis(
                design.dut,
                **kwargs,
                dispatch=fleet_exact_dispatch(coord, "jx"),
            )
        finally:
            stop.set()
        assert report.to_json(top=None) == golden


class TestFleetService:
    """End to end over HTTP: coordinator service + HttpTransport workers."""

    @pytest.fixture()
    def service(self, tmp_path):
        service = EvaluationService(
            str(tmp_path / "state"),
            port=0,
            fleet=True,
            local_workers=0,
            lease_seconds=10.0,
        )
        service.start()
        yield service
        service.stop()

    def _submit_and_fetch(self, service, spec_dict):
        body = json.dumps(spec_dict).encode()
        request = urllib.request.Request(
            f"{service.address}/v1/jobs",
            data=body,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=60) as resp:
            record = json.loads(resp.read())
        job_id = record["job_id"]
        deadline = time.monotonic() + 120
        while record["state"] in ("queued", "running"):
            assert time.monotonic() < deadline, "job did not finish"
            with urllib.request.urlopen(
                f"{service.address}/v1/jobs/{job_id}?wait=5", timeout=60
            ) as resp:
                record = json.loads(resp.read())
        assert record["state"] == "done", record
        with urllib.request.urlopen(
            f"{service.address}/v1/jobs/{job_id}/report", timeout=60
        ) as resp:
            return resp.read()

    def test_http_workers_produce_serial_bytes(self, service):
        golden = _serial_report_bytes(SMALL_SPEC).encode("utf-8")
        stop = threading.Event()
        threads = []
        for index in range(2):
            worker = FleetWorker(
                HttpTransport(service.address),
                worker_id=f"http-{index}",
                poll_interval=0.05,
            )
            thread = threading.Thread(
                target=worker.run, args=(stop,), daemon=True
            )
            thread.start()
            threads.append(thread)
        try:
            assert self._submit_and_fetch(service, SMALL_SPEC) == golden
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10)

    def test_metrics_expose_fleet_gauges(self, service):
        with urllib.request.urlopen(
            f"{service.address}/v1/metrics", timeout=30
        ) as resp:
            metrics = json.loads(resp.read())
        assert "fleet" in metrics
        fleet = metrics["fleet"]
        assert fleet["lease_seconds"] == 10.0
        assert {"pending_items", "active_leases", "workers_live"} <= set(
            fleet
        )
        assert "by_priority" in metrics["queue"]
        assert "cache_hit_rate" in metrics

    def test_embedded_local_workers_serve_jobs(self, tmp_path):
        """fleet=True with local workers is self-sufficient (degenerate
        one-host deployment) and still bit-identical to serial."""
        golden = _serial_report_bytes(SMALL_SPEC).encode("utf-8")
        service = EvaluationService(
            str(tmp_path / "state2"),
            port=0,
            fleet=True,
            local_workers=2,
            lease_seconds=10.0,
        )
        service.start()
        try:
            assert self._submit_and_fetch(service, SMALL_SPEC) == golden
        finally:
            service.stop()
