"""Cross-engine identity tests for the in-kernel evaluation pipeline.

The native engine's ``run_pipeline`` fuses stimulus generation,
simulation, bit-plane extraction and histogramming into one C pass.
Every stage claims bit-compatibility with the Python path it replaces:

* stimulus plans executed in C consume the PCG64 stream exactly as the
  Python interpreter does (``repro.leakage.stimplan``);
* the extraction kernel's three dispatch paths (popcount histogram,
  64x64 transpose, fused scalar) all produce ``numpy.bincount`` of the
  Python path's observation keys;
* dense count tables fold into :class:`HistogramAccumulator` exactly
  like raw key arrays, and ``g_test_counts_batch`` is bit-identical to
  ``g_test_batch`` on equal tables.

These properties are what keep checkpoints, resumes and verdicts
byte-identical across the engine ladder, so they are tested here
directly, plus end-to-end through the periodic evaluator and a
checkpoint/resume campaign with the pipeline active.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.leakage.evaluator import (
    HistogramAccumulator,
    LeakageEvaluator,
    _mix_hash,
)
from repro.leakage.gtest import g_test_batch, g_test_counts_batch
from repro.leakage.model import ProbingModel
from repro.leakage.stimplan import StimulusPlanBuilder
from repro.netlist.compile import CompiledSimulator
from repro.netlist.native import (
    CountSpec,
    build_pipeline_kernel,
    pipeline_available,
    _stimgen_dense,
)
from tests.strategies import random_circuits

needs_pipeline = pytest.mark.skipif(
    not pipeline_available(),
    reason="no C toolchain for the native pipeline kernel",
)


# --------------------------------------------------------------- helpers


def _lane_bits(words: np.ndarray, n_lanes: int) -> np.ndarray:
    """Per-lane bit column of a packed uint64 word row."""
    lanes = np.arange(n_lanes)
    return (
        words[lanes >> 6] >> (lanes & 63).astype(np.uint64)
    ) & np.uint64(1)


def _python_counts(trace, n_lanes, spec, hash_bits):
    """Reference extraction: keys via trace bit-planes, then bincount.

    Mirrors the contract documented on :class:`CountSpec`: each
    segment's per-lane key is the OR of ``bit << position`` sources,
    hashed segments bucket through ``_mix_hash``, and all segments of a
    test accumulate into one table.
    """
    total = np.zeros(spec.n_bins, dtype=np.int64)
    for segment in spec.segments:
        keys = np.zeros(n_lanes, dtype=np.uint64)
        for cycle, net, position in segment:
            bits = _lane_bits(trace.words(cycle, net), n_lanes)
            keys |= bits << np.uint64(position)
        if spec.hashed:
            keys = _mix_hash(keys) >> np.uint64(64 - hash_bits)
        total += np.bincount(keys.astype(np.int64), minlength=spec.n_bins)
    return total


def _input_plan(inputs, n_lanes, seed):
    """One DRAW per primary input -- the simplest full-coverage plan."""
    builder = StimulusPlanBuilder((n_lanes + 63) // 64)
    for net in inputs:
        builder.draw(net=net)
    return builder.build(np.random.default_rng(seed))


def _assert_identical_reports(report_a, report_b):
    assert len(report_a.results) == len(report_b.results)
    for a, b in zip(report_a.results, report_b.results):
        assert a.probe_names == b.probe_names
        assert a.g_statistic == b.g_statistic
        assert a.dof == b.dof
        assert a.mlog10p == b.mlog10p
        assert a.leaking == b.leaking


# ------------------------------------------------- in-kernel stimulus


@st.composite
def plan_programs(draw):
    """A random stimulus program as plain data, buildable many times.

    Covers every opcode: DRAW/CONST/COPY/XOR/XORC in random dependency
    order plus an optional NZ8 (whose rejection-sampling retry path
    fires often at 64+ lanes).
    """
    n_words = draw(st.integers(1, 3))
    period = draw(st.integers(1, 4))
    cols = [
        [draw(st.integers(0, 1)) for _ in range(period)]
        for _ in range(draw(st.integers(1, 3)))
    ]
    ops = []
    n_rows = 0
    for _ in range(draw(st.integers(1, 10))):
        kinds = ["draw", "const"]
        if n_rows:
            kinds += ["copy", "xor", "xorc"]
        kind = draw(st.sampled_from(kinds))
        if kind == "draw":
            ops.append(("draw",))
        elif kind == "const":
            ops.append(("const", draw(st.integers(0, len(cols) - 1))))
        elif kind == "copy":
            ops.append(("copy", draw(st.integers(0, n_rows - 1))))
        elif kind == "xor":
            ops.append((
                "xor",
                draw(st.integers(0, n_rows - 1)),
                draw(st.integers(0, n_rows - 1)),
            ))
        else:
            ops.append((
                "xorc",
                draw(st.integers(0, n_rows - 1)),
                draw(st.integers(0, len(cols) - 1)),
            ))
        n_rows += 1
    if draw(st.booleans()):
        ops.append(("nz8",))
    return n_words, period, cols, ops


def _build_plan(spec, seed):
    """Materialize a plan program; identical specs+seeds draw the same
    stream no matter which executor later runs the plan."""
    n_words, period, cols, ops = spec
    builder = StimulusPlanBuilder(n_words, period=period)
    col_ids = [builder.column(bits) for bits in cols]
    net = 0
    for op in ops:
        if op[0] == "draw":
            builder.draw(net=net)
            net += 1
        elif op[0] == "const":
            builder.const(col_ids[op[1]], net=net)
            net += 1
        elif op[0] == "copy":
            builder.copy(op[1], net=net)
            net += 1
        elif op[0] == "xor":
            builder.xor(op[1], op[2], net=net)
            net += 1
        elif op[0] == "xorc":
            builder.xor_const(op[1], col_ids[op[2]], net=net)
            net += 1
        else:
            builder.nonzero8(list(range(net, net + 8)))
            net += 8
    return builder.build(np.random.default_rng(seed))


@needs_pipeline
class TestInKernelStimulus:
    @settings(deadline=None, max_examples=40)
    @given(
        spec=plan_programs(),
        seed=st.integers(0, 2**32 - 1),
        n_cycles=st.integers(1, 9),
    )
    def test_stimgen_matches_python_interpreter(self, spec, seed, n_cycles):
        kernel = build_pipeline_kernel()
        native_plan = _build_plan(spec, seed)
        python_plan = _build_plan(spec, seed)
        nets = native_plan.nets
        slot_of_net = {net: slot for slot, net in enumerate(nets)}
        dense = _stimgen_dense(
            kernel, native_plan, slot_of_net, len(nets),
            n_cycles, native_plan.n_words,
        )
        for cycle in range(n_cycles):
            values = python_plan(cycle)
            for net in nets:
                assert np.array_equal(
                    dense[cycle, slot_of_net[net]], values[net]
                ), f"cycle {cycle} net {net}"

    def test_plan_has_a_single_executor(self):
        plan = _build_plan((1, 1, [[1]], [("draw",)]), seed=3)
        plan(0)  # python interpretation consumes the stream
        with pytest.raises(SimulationError, match="already interpreted"):
            plan.rng_state()


# ------------------------------------- in-kernel extraction + histogram


@needs_pipeline
class TestInKernelExtraction:
    """run_pipeline counts == bincount of the Python path's keys.

    The specs are built to hit all three extraction dispatch paths:
    narrow contiguous (popcount histogram), wide contiguous (64x64
    transpose), non-contiguous positions and hashed keys (fused
    scalar), plus multi-segment accumulation.
    """

    def _specs(self, sources, hash_bits):
        specs = []
        narrow = sources[: min(3, len(sources))]
        segments = (
            tuple(
                (cycle, net, position)
                for position, (cycle, net) in enumerate(narrow)
            ),
            tuple(
                (cycle, net, position)
                for position, (cycle, net) in enumerate(reversed(narrow))
            ),
        )
        specs.append(CountSpec(segments, False, 1 << len(narrow)))
        if len(sources) >= 8:
            wide = sources[: min(12, len(sources))]
            specs.append(
                CountSpec(
                    (
                        tuple(
                            (cycle, net, position)
                            for position, (cycle, net) in enumerate(wide)
                        ),
                    ),
                    False,
                    1 << len(wide),
                )
            )
            specs.append(
                CountSpec(
                    (
                        tuple(
                            (cycle, net, position)
                            for position, (cycle, net) in enumerate(wide)
                        ),
                    ),
                    True,
                    1 << hash_bits,
                )
            )
        if len(sources) >= 2:
            gappy = sources[: min(4, len(sources))]
            positions = [0] + [i + 2 for i in range(1, len(gappy))]
            specs.append(
                CountSpec(
                    (
                        tuple(
                            (cycle, net, position)
                            for (cycle, net), position in zip(
                                gappy, positions
                            )
                        ),
                    ),
                    False,
                    1 << (positions[-1] + 1),
                )
            )
        return specs

    @settings(deadline=None, max_examples=8)
    @given(
        data=st.data(),
        seed=st.integers(0, 2**32 - 1),
        n_lanes=st.sampled_from([64, 100, 192]),
    )
    def test_counts_match_python_extraction(self, data, seed, n_lanes):
        from repro.netlist.native import NativeSimulator

        nl, inputs, nets = data.draw(random_circuits())
        record = sorted(set(nets))
        n_cycles = data.draw(st.integers(2, 5))
        record_cycles = list(range(n_cycles))
        hash_bits = 6
        sources = [
            (cycle, net) for cycle in record_cycles for net in record
        ]
        specs = self._specs(sources, hash_bits)

        # same program, two executors, one PCG64 stream each
        native_plan = _input_plan(inputs, n_lanes, seed)
        python_plan = _input_plan(inputs, n_lanes, seed)

        sim = NativeSimulator(
            nl, n_lanes, keep_nets=record, record_nets=record
        )
        counts, timings = sim.run_pipeline(
            native_plan, n_cycles, record, record_cycles, specs, hash_bits
        )
        assert set(timings) == {"stimulus", "simulate", "extract"}

        trace = CompiledSimulator(nl, n_lanes, keep_nets=record).run(
            python_plan, n_cycles,
            record_nets=record, record_cycles=record_cycles,
        )
        for spec, table in zip(specs, counts):
            expected = _python_counts(trace, n_lanes, spec, hash_bits)
            assert np.array_equal(table, expected), spec
            assert int(table.sum()) == n_lanes * len(spec.segments)

    @settings(deadline=None, max_examples=6)
    @given(data=st.data(), seed=st.integers(0, 2**32 - 1))
    def test_scheduled_pipeline_matches_python(self, data, seed):
        from repro.netlist.native import NativeScheduledSimulator
        from repro.netlist.slice import ScheduledSimulator

        nl, inputs, nets = data.draw(random_circuits())
        n_lanes = 64
        roots = sorted({nets[-1], nets[len(nets) // 2]})
        n_cycles = data.draw(st.integers(2, 5))
        record_cycles = list(range(n_cycles))
        hash_bits = 6
        sources = [
            (cycle, net) for cycle in record_cycles for net in roots
        ]
        specs = self._specs(sources, hash_bits)

        native_plan = _input_plan(inputs, n_lanes, seed)
        python_plan = _input_plan(inputs, n_lanes, seed)

        sim = NativeScheduledSimulator(
            nl, n_lanes, roots, record_cycles, n_cycles, {}
        )
        counts, _ = sim.run_pipeline(native_plan, roots, specs, hash_bits)

        trace = ScheduledSimulator(
            nl, n_lanes, roots, record_cycles, n_cycles, {}
        ).run(python_plan, record_nets=roots)
        for spec, table in zip(specs, counts):
            expected = _python_counts(trace, n_lanes, spec, hash_bits)
            assert np.array_equal(table, expected), spec

    def test_too_wide_segment_raises_not_garbage(self):
        """Keys beyond 64 bits have no dense table; the kernel reports
        status 5 and the caller degrades to the Python path."""
        from repro.core.kronecker import build_kronecker_delta
        from repro.core.optimizations import RandomnessScheme
        from repro.netlist.native import NativeSimulator

        design = build_kronecker_delta(RandomnessScheme.DEMEYER_EQ6)
        nl = design.dut.netlist
        inputs = list(nl.inputs)
        net = inputs[0]
        spec = CountSpec(
            (tuple((0, net, position) for position in range(65)),),
            False,
            1 << 10,
        )
        plan = _input_plan(inputs, 64, seed=1)
        sim = NativeSimulator(
            nl, 64, keep_nets=[net], record_nets=[net]
        )
        with pytest.raises(SimulationError, match="status 5"):
            sim.run_pipeline(plan, 1, [net], [0], [spec], 10)


# ------------------------------------------------ histogram accumulation


class TestCountTableAccumulation:
    """add_counts folds dense tables exactly like add folds raw keys."""

    @settings(deadline=None, max_examples=60)
    @given(
        keys_fixed=st.lists(st.integers(0, 31), max_size=64),
        keys_random=st.lists(st.integers(0, 31), max_size=64),
        n_bins=st.sampled_from([32, 40]),
    )
    def test_add_counts_equals_add(self, keys_fixed, keys_random, n_bins):
        kf = np.asarray(keys_fixed, dtype=np.uint64)
        kr = np.asarray(keys_random, dtype=np.uint64)
        by_keys = HistogramAccumulator()
        by_keys.add("t", kf, HistogramAccumulator.GROUP_FIXED)
        by_keys.add("t", kr, HistogramAccumulator.GROUP_RANDOM)
        by_counts = HistogramAccumulator()
        by_counts.add_counts(
            "t",
            np.bincount(kf.astype(np.int64), minlength=n_bins),
            HistogramAccumulator.GROUP_FIXED,
        )
        by_counts.add_counts(
            "t",
            np.bincount(kr.astype(np.int64), minlength=n_bins),
            HistogramAccumulator.GROUP_RANDOM,
        )
        assert by_keys.table_ids() == by_counts.table_ids()
        for table_id in by_keys.table_ids():
            for a, b in zip(
                by_keys.counts(table_id), by_counts.counts(table_id)
            ):
                assert np.array_equal(a, b)

    @settings(deadline=None, max_examples=40)
    @given(
        keys_fixed=st.lists(
            st.integers(0, 15), min_size=1, max_size=200
        ),
        keys_random=st.lists(
            st.integers(0, 15), min_size=1, max_size=200
        ),
    )
    def test_counts_batch_equals_keys_batch(self, keys_fixed, keys_random):
        """g_test_counts_batch == g_test_batch on equal tables, bit for
        bit -- the contract the pipeline's verdicts rest on."""
        kf = np.asarray(keys_fixed, dtype=np.uint64)
        kr = np.asarray(keys_random, dtype=np.uint64)
        from_keys = g_test_batch([(kf, kr)])
        from_counts = g_test_counts_batch([
            (
                np.bincount(kf.astype(np.int64), minlength=16),
                np.bincount(kr.astype(np.int64), minlength=16),
            )
        ])
        for a, b in zip(from_keys, from_counts):
            assert a.g_statistic == b.g_statistic
            assert a.dof == b.dof
            assert a.mlog10p == b.mlog10p
            assert a.n_categories == b.n_categories
            assert a.n_fixed == b.n_fixed
            assert a.n_random == b.n_random

    def test_counts_batch_empty_table_is_untestable(self):
        (result,) = g_test_counts_batch(
            [(np.zeros(8, np.int64), np.zeros(8, np.int64))]
        )
        assert result.dof == 0
        assert result.mlog10p == 0.0


# --------------------------------------------- end-to-end through blocks


@needs_pipeline
class TestEvaluatorPipelineIdentity:
    def test_first_order_report_identical_and_pipeline_engaged(
        self, kronecker_eq6
    ):
        compiled = LeakageEvaluator(
            kronecker_eq6.dut, seed=11, engine="compiled"
        ).evaluate(fixed_secret=0, n_simulations=6000)
        evaluator = LeakageEvaluator(
            kronecker_eq6.dut, seed=11, engine="native"
        )
        native = evaluator.evaluate(fixed_secret=0, n_simulations=6000)
        _assert_identical_reports(compiled, native)
        assert evaluator._pipeline_supported()
        assert not any(
            d["kind"] == "pipeline_python" for d in evaluator.degradations
        )
        # only the in-kernel stimulus stage can book stimulus time
        assert evaluator.stage_seconds["stimulus"] > 0.0

    def test_campaign_resume_across_chunk_boundary(
        self, kronecker_eq6, tmp_path
    ):
        """Kill-and-resume with the pipeline active: two blocks run,
        checkpoint, a fresh campaign resumes with a different chunking
        -- the verdict matches a single-pass compiled evaluation bit
        for bit."""
        from repro.leakage.campaign import CampaignConfig, EvaluationCampaign

        n_sims = 20_000
        path = str(tmp_path / "ck.npz")

        def native_evaluator():
            return LeakageEvaluator(
                kronecker_eq6.dut, ProbingModel.GLITCH, seed=7,
                engine="native",
            )

        first = EvaluationCampaign(
            native_evaluator(),
            CampaignConfig(
                n_simulations=n_sims, chunk_size=4_096, checkpoint=path
            ),
        )
        first.progress.blocks_total = first._blocks_total()
        first._run_chunk_with_retry(0, 2)
        first.progress.blocks_done = 2
        first._save_checkpoint(path, 2)

        resumed = EvaluationCampaign(
            native_evaluator(),
            CampaignConfig(
                n_simulations=n_sims, chunk_size=8_192, checkpoint=path
            ),
        )
        report = resumed.run(resume=True)
        assert resumed.progress.resumed_from_block == 2
        assert report.status == "complete"
        for campaign in (first, resumed):
            assert not any(
                d["kind"] == "pipeline_python"
                for d in campaign.evaluator.degradations
            )

        single = LeakageEvaluator(
            kronecker_eq6.dut, ProbingModel.GLITCH, seed=7,
            engine="compiled",
        ).evaluate(n_simulations=n_sims)
        _assert_identical_reports(single, report)


@pytest.fixture(scope="module")
def aes_core_setup():
    """A masked AES core plus a bounded probe set for fast identity runs."""
    from repro.core.aes_core import AesCoreHarness, build_masked_aes_core
    from repro.core.optimizations import RandomnessScheme

    core = build_masked_aes_core(RandomnessScheme.DEMEYER_EQ6)
    harness = AesCoreHarness(core)
    probes = [
        c.output for c in core.netlist.cells if c.name.startswith("sb0.")
    ][:64]
    return core, harness, probes


_AES_KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")


def _periodic_report(core, harness, probes, engine, scheduled, n_lanes=512):
    from repro.core.aes_core import ENCRYPTION_CYCLES
    from repro.leakage.periodic import PeriodicLeakageEvaluator

    evaluator = PeriodicLeakageEvaluator(
        core.netlist,
        ENCRYPTION_CYCLES,
        ProbingModel.GLITCH,
        probe_nets=probes,
        slice_cones=True,
        control_schedule=(
            harness.control_net_schedule() if scheduled else None
        ),
        engine=engine,
    )
    n_words = (n_lanes + 63) // 64
    stim_fixed = harness.bitsliced_stimulus(
        np.random.default_rng(11), n_words, _AES_KEY, _AES_KEY
    )
    stim_random = harness.bitsliced_stimulus(
        np.random.default_rng(12), n_words, _AES_KEY, None
    )
    report = evaluator.evaluate(
        stim_fixed, stim_random, n_lanes,
        phases=[3], n_periods=1, design_name="aes_core_eq6",
    )
    return evaluator, report


@needs_pipeline
class TestPeriodicPipelineIdentity:
    def test_static_cone_report_identical(self, aes_core_setup):
        core, harness, probes = aes_core_setup
        _, compiled = _periodic_report(
            core, harness, probes, "compiled", scheduled=False
        )
        evaluator, native = _periodic_report(
            core, harness, probes, "native", scheduled=False
        )
        _assert_identical_reports(compiled, native)
        assert evaluator.last_slice_info.get("pipeline") is True
        assert not evaluator.degradations
        assert evaluator.last_stage_seconds["stimulus"] > 0.0

    def test_scheduled_cone_report_identical(self, aes_core_setup):
        core, harness, probes = aes_core_setup
        _, reference = _periodic_report(
            core, harness, probes, "compiled", scheduled=True
        )
        evaluator, native = _periodic_report(
            core, harness, probes, "native", scheduled=True
        )
        _assert_identical_reports(reference, native)
        assert evaluator.last_slice_info["engine"] == "native"
        assert evaluator.last_slice_info.get("pipeline") is True
        assert not evaluator.degradations


class TestPipelineDegradation:
    def test_pipeline_unsupported_when_native_disabled(
        self, kronecker_eq6, monkeypatch
    ):
        """No toolchain: engine=native degrades to compiled before any
        pipeline attempt, and the verdict is unchanged."""
        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        assert not pipeline_available()
        evaluator = LeakageEvaluator(
            kronecker_eq6.dut, seed=11, engine="native"
        )
        assert not evaluator._pipeline_supported()
        with pytest.warns(RuntimeWarning, match="native"):
            degraded = evaluator.evaluate(fixed_secret=0, n_simulations=6000)
        assert evaluator.stage_seconds["stimulus"] == 0.0
        compiled = LeakageEvaluator(
            kronecker_eq6.dut, seed=11, engine="compiled"
        ).evaluate(fixed_secret=0, n_simulations=6000)
        _assert_identical_reports(compiled, degraded)

    def test_scheduled_periodic_degrades_bit_identically(
        self, aes_core_setup, monkeypatch
    ):
        """Scheduled periodic run under engine=native with no toolchain:
        a scheduled_python degradation is recorded and the python path
        produces the identical report -- the no-toolchain CI leg."""
        core, harness, probes = aes_core_setup
        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        evaluator, degraded = _periodic_report(
            core, harness, probes, "native", scheduled=True
        )
        kinds = [d["kind"] for d in evaluator.degradations]
        assert "scheduled_python" in kinds
        assert evaluator.last_slice_info["engine"] == "python"
        assert evaluator.last_slice_info.get("pipeline") is None
        _, reference = _periodic_report(
            core, harness, probes, "compiled", scheduled=True
        )
        _assert_identical_reports(reference, degraded)
