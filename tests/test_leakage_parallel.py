"""Tests for the multiprocessing campaign executor.

The load-bearing property is bit-identity: any worker count, any shard
boundaries, and any kill/resume point must reproduce the serial campaign's
per-probe contingency tables (and therefore G statistics and -log10(p))
exactly, because every sampling block draws from a private RNG stream and
table accumulation commutes.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.leakage.campaign import CampaignConfig, EvaluationCampaign
from repro.leakage.evaluator import HistogramAccumulator, LeakageEvaluator
from repro.leakage.model import ProbingModel
from repro.leakage.parallel import (
    ParallelExecutor,
    default_workers,
    shard_blocks,
)

N_SIMS = 20_000


def _evaluator(design, seed=7, engine="compiled"):
    return LeakageEvaluator(
        design.dut, ProbingModel.GLITCH, seed=seed, engine=engine
    )


def _assert_identical(report_a, report_b):
    assert len(report_a.results) == len(report_b.results)
    for a, b in zip(report_a.results, report_b.results):
        assert a.probe_names == b.probe_names
        assert a.g_statistic == b.g_statistic
        assert a.dof == b.dof
        assert a.mlog10p == b.mlog10p


def _assert_tables_identical(acc_a, acc_b):
    assert sorted(acc_a.table_ids()) == sorted(acc_b.table_ids())
    for table_id in acc_a.table_ids():
        keys_a, fixed_a, random_a = acc_a.counts(table_id)
        keys_b, fixed_b, random_b = acc_b.counts(table_id)
        assert np.array_equal(keys_a, keys_b)
        assert np.array_equal(fixed_a, fixed_b)
        assert np.array_equal(random_a, random_b)


class TestShardBlocks:
    @given(
        st.lists(st.integers(0, 10_000), max_size=60, unique=True),
        st.integers(1, 12),
    )
    def test_partition_properties(self, blocks, n_shards):
        shards = shard_blocks(blocks, n_shards)
        # Every block exactly once, order preserved.
        assert [b for shard in shards for b in shard] == blocks
        assert all(shard for shard in shards)
        assert len(shards) == min(n_shards, len(blocks))
        if shards:
            sizes = [len(s) for s in shards]
            assert max(sizes) - min(sizes) <= 1

    def test_empty_blocks(self):
        assert shard_blocks([], 4) == []

    def test_invalid_shard_count(self):
        with pytest.raises(SimulationError):
            shard_blocks([0, 1], 0)

    def test_default_workers_positive(self):
        assert default_workers() >= 1


class TestWorkerIdentity:
    def _campaign(self, design, workers, mode="first", **kwargs):
        config = CampaignConfig(
            n_simulations=N_SIMS,
            chunk_size=8_192,
            workers=workers,
            mode=mode,
            max_pairs=15,
            **kwargs,
        )
        campaign = EvaluationCampaign(_evaluator(design), config)
        report = campaign.run()
        return campaign, report

    def test_workers4_bit_identical_to_serial(self, kronecker_eq6):
        serial, report_1 = self._campaign(kronecker_eq6, workers=1)
        parallel, report_4 = self._campaign(kronecker_eq6, workers=4)
        _assert_identical(report_1, report_4)
        _assert_tables_identical(serial.accumulator, parallel.accumulator)

    def test_pairs_mode_parallel_identity(self, kronecker_full):
        serial, report_1 = self._campaign(
            kronecker_full, workers=1, mode="pairs"
        )
        parallel, report_2 = self._campaign(
            kronecker_full, workers=2, mode="pairs"
        )
        _assert_identical(report_1, report_2)
        _assert_tables_identical(serial.accumulator, parallel.accumulator)

    def test_both_mode_parallel_identity(self, kronecker_eq6):
        serial, report_1 = self._campaign(
            kronecker_eq6, workers=1, mode="both"
        )
        parallel, report_2 = self._campaign(
            kronecker_eq6, workers=2, mode="both"
        )
        _assert_identical(report_1, report_2)
        _assert_tables_identical(serial.accumulator, parallel.accumulator)

    def test_kill_and_resume_parallel(self, kronecker_eq6, tmp_path):
        """A serial partial checkpoint resumes under workers=4, and the
        other way around, both bit-identical to one uninterrupted run."""
        path = str(tmp_path / "ck.npz")
        partial = EvaluationCampaign(
            _evaluator(kronecker_eq6),
            CampaignConfig(
                n_simulations=N_SIMS, chunk_size=4_096, checkpoint=path
            ),
        )
        partial.progress.blocks_total = partial._blocks_total()
        partial._run_chunk_with_retry(0, 2)
        partial.progress.blocks_done = 2
        partial._save_checkpoint(path, 2)

        resumed = EvaluationCampaign(
            _evaluator(kronecker_eq6),
            CampaignConfig(
                n_simulations=N_SIMS,
                chunk_size=8_192,
                checkpoint=path,
                workers=4,
            ),
        )
        report = resumed.run(resume=True)
        assert resumed.progress.resumed_from_block == 2
        assert report.status == "complete"
        single = _evaluator(kronecker_eq6).evaluate(n_simulations=N_SIMS)
        _assert_identical(single, report)

    def test_fingerprint_ignores_worker_count(self, kronecker_eq6, tmp_path):
        """workers is an execution detail: a checkpoint written under one
        worker count resumes under any other."""
        path = str(tmp_path / "ck.npz")
        a = EvaluationCampaign(
            _evaluator(kronecker_eq6),
            CampaignConfig(n_simulations=N_SIMS, workers=1, checkpoint=path),
        )
        b = EvaluationCampaign(
            _evaluator(kronecker_eq6),
            CampaignConfig(n_simulations=N_SIMS, workers=4, checkpoint=path),
        )
        assert a.fingerprint() == b.fingerprint()


class TestExecutorDirect:
    def test_executor_matches_in_process(self, kronecker_eq6):
        evaluator = _evaluator(kronecker_eq6)
        blocks = list(range(3))
        serial = HistogramAccumulator()
        evaluator.accumulate(serial, 0, N_SIMS, 1, blocks=blocks)
        parallel = HistogramAccumulator()
        with ParallelExecutor(evaluator, workers=3) as executor:
            executor.accumulate(parallel, 0, N_SIMS, 1, blocks)
        _assert_tables_identical(serial, parallel)

    def test_empty_blocks_no_op(self, kronecker_eq6):
        acc = HistogramAccumulator()
        with ParallelExecutor(_evaluator(kronecker_eq6), workers=2) as ex:
            ex.accumulate(acc, 0, N_SIMS, 1, [])
        assert acc.table_ids() == []

    def test_invalid_worker_count(self, kronecker_eq6):
        with pytest.raises(SimulationError):
            ParallelExecutor(_evaluator(kronecker_eq6), workers=0)

    def test_serial_fallback_warns_and_matches(
        self, kronecker_eq6, monkeypatch
    ):
        """When the pool cannot start, the executor must warn and still
        produce the exact serial tables in-process."""
        import repro.leakage.parallel as parallel_mod

        def broken_pool(*args, **kwargs):
            raise OSError("sem_open blocked")

        monkeypatch.setattr(
            parallel_mod, "ProcessPoolExecutor", broken_pool
        )
        evaluator = _evaluator(kronecker_eq6)
        blocks = list(range(3))
        reference = HistogramAccumulator()
        evaluator.accumulate(reference, 0, N_SIMS, 1, blocks=blocks)
        acc = HistogramAccumulator()
        with ParallelExecutor(evaluator, workers=4) as executor:
            with pytest.warns(RuntimeWarning, match="multiprocessing"):
                executor.accumulate(acc, 0, N_SIMS, 1, blocks)
            assert executor._serial_fallback
            # Subsequent chunks stay in-process without further warnings.
            executor.accumulate(acc, 0, N_SIMS, 1, [])
        _assert_tables_identical(reference, acc)
