"""Tests for the value-level masked AES-128."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.aes.cipher import aes128_encrypt_block
from repro.aes.sbox import inv_sbox, sbox
from repro.core.aes_masked import (
    MaskedAes128,
    masked_inv_sbox_value,
    masked_sbox_value,
)
from repro.errors import MaskingError
from repro.masking.shares import BooleanSharing

blocks = st.binary(min_size=16, max_size=16)
seeds = st.integers(0, 2**32 - 1)


class TestMaskedSboxValue:
    def test_all_inputs(self):
        rng = random.Random(1)
        for x in range(256):
            sharing = BooleanSharing.share(x, 2, rng)
            assert masked_sbox_value(sharing, rng).value == sbox(x)

    def test_zero_input_handled(self):
        """The Kronecker zero-mapping: S(0) = 0x63 without unmasked zeros."""
        rng = random.Random(2)
        sharing = BooleanSharing.share(0, 2, rng)
        assert masked_sbox_value(sharing, rng).value == 0x63

    @given(st.integers(0, 255), seeds)
    def test_output_is_reshared(self, x, seed):
        rng = random.Random(seed)
        sharing = BooleanSharing.share(x, 2, rng)
        first = masked_sbox_value(sharing, rng)
        second = masked_sbox_value(sharing, rng)
        assert first.value == second.value == sbox(x)

    @pytest.mark.parametrize("n_shares", [3, 4])
    def test_higher_order_sharings(self, n_shares):
        rng = random.Random(3)
        for x in (0, 1, 0x53, 0xFF):
            sharing = BooleanSharing.share(x, n_shares, rng)
            result = masked_sbox_value(sharing, rng)
            assert result.value == sbox(x)
            assert len(result.shares) == n_shares


class TestMaskedInvSboxValue:
    def test_all_inputs(self):
        rng = random.Random(4)
        for y in range(256):
            sharing = BooleanSharing.share(y, 2, rng)
            assert masked_inv_sbox_value(sharing, rng).value == inv_sbox(y)

    @given(st.integers(0, 255), seeds)
    def test_inverts_masked_sbox(self, x, seed):
        rng = random.Random(seed)
        sharing = BooleanSharing.share(x, 2, rng)
        forward = masked_sbox_value(sharing, rng)
        assert masked_inv_sbox_value(forward, rng).value == x


class TestMaskedAes:
    def test_fips_appendix_c(self):
        pt = bytes.fromhex("00112233445566778899aabbccddeeff")
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        masked = MaskedAes128(key, random.Random(0))
        assert (
            masked.encrypt_block(pt).hex()
            == "69c4e0d86a7b0430d8cdb78070b4c55a"
        )

    @settings(max_examples=10, deadline=None)
    @given(blocks, blocks, seeds)
    def test_matches_reference_cipher(self, pt, key, seed):
        masked = MaskedAes128(key, random.Random(seed))
        assert masked.encrypt_block(pt) == aes128_encrypt_block(pt, key)

    def test_encrypt_shared_returns_shares(self):
        key = bytes(16)
        masked = MaskedAes128(key, random.Random(5))
        rng = random.Random(6)
        shares = [BooleanSharing.share(b, 2, rng) for b in bytes(16)]
        out = masked.encrypt_shared(shares)
        assert len(out) == 16
        recombined = bytes(s.value for s in out)
        assert recombined == aes128_encrypt_block(bytes(16), key)

    def test_state_length_checked(self):
        masked = MaskedAes128(bytes(16), random.Random(7))
        with pytest.raises(MaskingError):
            masked.encrypt_shared([])

    def test_round_keys_are_shared(self):
        masked = MaskedAes128(bytes(16), random.Random(8))
        assert len(masked.round_key_shares) == 11
        for round_key in masked.round_key_shares:
            assert all(len(b.shares) == 2 for b in round_key)

    @pytest.mark.parametrize("order", [2, 3])
    def test_higher_order_cipher_matches_reference(self, order):
        pt = bytes.fromhex("00112233445566778899aabbccddeeff")
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        masked = MaskedAes128(key, random.Random(order), order=order)
        assert masked.encrypt_block(pt) == aes128_encrypt_block(pt, key)
        assert masked.decrypt_block(
            aes128_encrypt_block(pt, key)
        ) == pt

    def test_invalid_order_rejected(self):
        with pytest.raises(MaskingError):
            MaskedAes128(bytes(16), order=0)

    def test_internal_shares_differ_between_runs(self):
        key = bytes(16)
        pt = bytes(range(16))
        m1 = MaskedAes128(key, random.Random(1))
        m2 = MaskedAes128(key, random.Random(2))
        s1 = m1.encrypt_shared(
            [BooleanSharing.share(b, 2, random.Random(10 + b)) for b in pt]
        )
        s2 = m2.encrypt_shared(
            [BooleanSharing.share(b, 2, random.Random(20 + b)) for b in pt]
        )
        assert [s.value for s in s1] == [s.value for s in s2]
        assert any(a.shares != b.shares for a, b in zip(s1, s2))
