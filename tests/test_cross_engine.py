"""Cross-engine equivalence: scalar, bitsliced, compiled, and native.

The four engines implement the same synchronous semantics at different
dispatch granularities (per gate per lane, per gate per word, per cell
type per level, whole block in one fused C kernel).  Any divergence is a
simulator bug, so random netlists with random cell mixes, registers, and
multi-cycle stimuli must agree cycle-for-cycle on every net -- and the
leakage evaluator must produce bit-identical reports no matter which
engine backs it.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.netlist.compile import CompiledSimulator
from repro.netlist.native import NativeSimulator, native_available
from repro.netlist.simulate import (
    BitslicedSimulator,
    ScalarSimulator,
    pack_lanes,
)

from tests.strategies import input_sequences, random_circuits

needs_native = pytest.mark.skipif(
    not native_available(), reason="no C toolchain for the native engine"
)


class TestRandomNetlistEquivalence:
    @settings(deadline=None, max_examples=100)
    @given(data=st.data())
    def test_three_engines_agree_cycle_for_cycle(self, data):
        nl, inputs, nets = data.draw(random_circuits())
        n_lanes = data.draw(st.sampled_from([1, 7, 8, 64, 65]))
        sequence = data.draw(input_sequences(len(inputs) * n_lanes, (1, 5)))
        n_cycles = len(sequence)

        def stimulus(cycle):
            out = {}
            for i, net in enumerate(inputs):
                bits = np.array(
                    [
                        sequence[cycle][i * n_lanes + lane]
                        for lane in range(n_lanes)
                    ],
                    dtype=np.uint8,
                )
                out[net] = pack_lanes(bits)
            return out

        bitsliced = BitslicedSimulator(nl, n_lanes).run(
            stimulus, n_cycles, record_nets=nets
        )
        compiled = CompiledSimulator(nl, n_lanes).run(
            stimulus, n_cycles, record_nets=nets
        )

        # Bitsliced vs compiled: identical words, every net, every cycle.
        for cycle in range(n_cycles):
            for net in nets:
                assert np.array_equal(
                    bitsliced.words(cycle, net), compiled.words(cycle, net)
                ), f"cycle {cycle} net {nl.net_name(net)}"

        # Scalar reference on a random lane.
        lane = data.draw(st.integers(0, n_lanes - 1))
        scalar = ScalarSimulator(nl)
        for cycle in range(n_cycles):
            values = scalar.step(
                {
                    net: sequence[cycle][i * n_lanes + lane]
                    for i, net in enumerate(inputs)
                }
            )
            for net in nets:
                assert compiled.bits(cycle, net)[lane] == values[net], (
                    f"cycle {cycle} net {nl.net_name(net)} lane {lane}"
                )


@needs_native
class TestNativeEngineEquivalence:
    """The fused C kernel against the compiled engine on random netlists.

    Fewer examples than the pure-python matrix above: every distinct
    netlist costs one ``cc`` invocation (the on-disk kernel cache only
    helps across re-runs).
    """

    @staticmethod
    def _stimulus(inputs, sequence, n_lanes):
        def stimulus(cycle):
            out = {}
            for i, net in enumerate(inputs):
                bits = np.array(
                    [
                        sequence[cycle][i * n_lanes + lane]
                        for lane in range(n_lanes)
                    ],
                    dtype=np.uint8,
                )
                out[net] = pack_lanes(bits)
            return out

        return stimulus

    @settings(deadline=None, max_examples=15)
    @given(data=st.data())
    def test_native_agrees_with_compiled(self, data):
        nl, inputs, nets = data.draw(random_circuits())
        n_lanes = data.draw(st.sampled_from([1, 64, 65]))
        n_threads = data.draw(st.sampled_from([1, 2]))
        sequence = data.draw(input_sequences(len(inputs) * n_lanes, (1, 5)))
        n_cycles = len(sequence)
        stimulus = self._stimulus(inputs, sequence, n_lanes)

        compiled = CompiledSimulator(nl, n_lanes).run(
            stimulus, n_cycles, record_nets=nets
        )
        native_sim = NativeSimulator(nl, n_lanes, n_threads=n_threads)
        native = native_sim.run(stimulus, n_cycles, record_nets=nets)
        for cycle in range(n_cycles):
            for net in nets:
                assert np.array_equal(
                    compiled.words(cycle, net), native.words(cycle, net)
                ), f"cycle {cycle} net {nl.net_name(net)}"

        # The dense pre-staged stimulus path is the same computation.
        dense = native_sim.expand_stimulus(stimulus, n_cycles)
        replay = native_sim.run(dense, n_cycles, record_nets=nets)
        for cycle in range(n_cycles):
            for net in nets:
                assert np.array_equal(
                    native.words(cycle, net), replay.words(cycle, net)
                )

    @settings(deadline=None, max_examples=10)
    @given(data=st.data())
    def test_native_agrees_on_sliced_cones(self, data):
        nl, inputs, nets = data.draw(random_circuits())
        n_lanes = data.draw(st.sampled_from([1, 64]))
        keep = sorted({
            nets[-1],
            nets[data.draw(st.integers(0, len(nets) - 1))],
        })
        sequence = data.draw(input_sequences(len(inputs) * n_lanes, (1, 4)))
        n_cycles = len(sequence)
        stimulus = self._stimulus(inputs, sequence, n_lanes)

        compiled = CompiledSimulator(nl, n_lanes, keep_nets=keep).run(
            stimulus, n_cycles, record_nets=keep
        )
        native = NativeSimulator(
            nl, n_lanes, keep_nets=keep, record_nets=keep
        ).run(stimulus, n_cycles, record_nets=keep)
        for cycle in range(n_cycles):
            for net in keep:
                assert np.array_equal(
                    compiled.words(cycle, net), native.words(cycle, net)
                ), f"cycle {cycle} net {nl.net_name(net)}"

    @settings(deadline=None, max_examples=10)
    @given(data=st.data())
    def test_native_agrees_with_scheduled_cone(self, data):
        # The scheduled-cone simulator is its own execution path (not an
        # engine behind the registry); with an empty schedule it reduces
        # to a cycle-aware static cone and must still match the fused
        # kernel at every recorded (root, cycle) pair.
        from repro.netlist.slice import ScheduledSimulator

        nl, inputs, nets = data.draw(random_circuits())
        n_lanes = 64
        roots = sorted({nets[-1]})
        sequence = data.draw(input_sequences(len(inputs) * n_lanes, (2, 4)))
        n_cycles = len(sequence)
        record_cycles = list(range(n_cycles))
        stimulus = self._stimulus(inputs, sequence, n_lanes)

        scheduled = ScheduledSimulator(
            nl, n_lanes, roots, record_cycles, n_cycles, {}
        ).run(stimulus, record_nets=roots)
        native = NativeSimulator(
            nl, n_lanes, keep_nets=roots, record_nets=roots
        ).run(
            stimulus, n_cycles,
            record_nets=roots, record_cycles=record_cycles,
        )
        for cycle in record_cycles:
            for net in roots:
                assert np.array_equal(
                    scheduled.words(cycle, net), native.words(cycle, net)
                ), f"cycle {cycle} net {nl.net_name(net)}"


class TestEvaluatorEngineIdentity:
    def _report(self, engine, pairs):
        from repro.core.kronecker import build_kronecker_delta
        from repro.core.optimizations import RandomnessScheme
        from repro.leakage.evaluator import LeakageEvaluator

        design = build_kronecker_delta(RandomnessScheme.DEMEYER_EQ6)
        evaluator = LeakageEvaluator(design.dut, seed=11, engine=engine)
        if pairs:
            return evaluator.evaluate_pairs(
                fixed_secret=0, n_simulations=6000, max_pairs=15
            )
        return evaluator.evaluate(fixed_secret=0, n_simulations=6000)

    def test_first_order_reports_identical(self):
        a = self._report("bitsliced", pairs=False)
        b = self._report("compiled", pairs=False)
        assert len(a.results) == len(b.results)
        for ra, rb in zip(a.results, b.results):
            assert ra.probe_names == rb.probe_names
            assert ra.g_statistic == rb.g_statistic
            assert ra.dof == rb.dof
            assert ra.mlog10p == rb.mlog10p

    def test_pairs_reports_identical(self):
        a = self._report("bitsliced", pairs=True)
        b = self._report("compiled", pairs=True)
        assert len(a.results) == len(b.results)
        for ra, rb in zip(a.results, b.results):
            assert ra.g_statistic == rb.g_statistic
            assert ra.mlog10p == rb.mlog10p

    @needs_native
    def test_native_reports_identical(self):
        a = self._report("compiled", pairs=False)
        b = self._report("native", pairs=False)
        assert len(a.results) == len(b.results)
        for ra, rb in zip(a.results, b.results):
            assert ra.probe_names == rb.probe_names
            assert ra.g_statistic == rb.g_statistic
            assert ra.dof == rb.dof
            assert ra.mlog10p == rb.mlog10p
