"""Cross-engine equivalence: scalar, bitsliced, and compiled simulators.

The three engines implement the same synchronous semantics at different
dispatch granularities (per gate per lane, per gate per word, per cell type
per level).  Any divergence is a simulator bug, so random netlists with
random cell mixes, registers, and multi-cycle stimuli must agree
cycle-for-cycle on every net -- and the leakage evaluator must produce
bit-identical reports no matter which engine backs it.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.netlist.compile import CompiledSimulator
from repro.netlist.simulate import (
    BitslicedSimulator,
    ScalarSimulator,
    pack_lanes,
)

from tests.strategies import input_sequences, random_circuits


class TestRandomNetlistEquivalence:
    @settings(deadline=None, max_examples=100)
    @given(data=st.data())
    def test_three_engines_agree_cycle_for_cycle(self, data):
        nl, inputs, nets = data.draw(random_circuits())
        n_lanes = data.draw(st.sampled_from([1, 7, 8, 64, 65]))
        sequence = data.draw(input_sequences(len(inputs) * n_lanes, (1, 5)))
        n_cycles = len(sequence)

        def stimulus(cycle):
            out = {}
            for i, net in enumerate(inputs):
                bits = np.array(
                    [
                        sequence[cycle][i * n_lanes + lane]
                        for lane in range(n_lanes)
                    ],
                    dtype=np.uint8,
                )
                out[net] = pack_lanes(bits)
            return out

        bitsliced = BitslicedSimulator(nl, n_lanes).run(
            stimulus, n_cycles, record_nets=nets
        )
        compiled = CompiledSimulator(nl, n_lanes).run(
            stimulus, n_cycles, record_nets=nets
        )

        # Bitsliced vs compiled: identical words, every net, every cycle.
        for cycle in range(n_cycles):
            for net in nets:
                assert np.array_equal(
                    bitsliced.words(cycle, net), compiled.words(cycle, net)
                ), f"cycle {cycle} net {nl.net_name(net)}"

        # Scalar reference on a random lane.
        lane = data.draw(st.integers(0, n_lanes - 1))
        scalar = ScalarSimulator(nl)
        for cycle in range(n_cycles):
            values = scalar.step(
                {
                    net: sequence[cycle][i * n_lanes + lane]
                    for i, net in enumerate(inputs)
                }
            )
            for net in nets:
                assert compiled.bits(cycle, net)[lane] == values[net], (
                    f"cycle {cycle} net {nl.net_name(net)} lane {lane}"
                )


class TestEvaluatorEngineIdentity:
    def _report(self, engine, pairs):
        from repro.core.kronecker import build_kronecker_delta
        from repro.core.optimizations import RandomnessScheme
        from repro.leakage.evaluator import LeakageEvaluator

        design = build_kronecker_delta(RandomnessScheme.DEMEYER_EQ6)
        evaluator = LeakageEvaluator(design.dut, seed=11, engine=engine)
        if pairs:
            return evaluator.evaluate_pairs(
                fixed_secret=0, n_simulations=6000, max_pairs=15
            )
        return evaluator.evaluate(fixed_secret=0, n_simulations=6000)

    def test_first_order_reports_identical(self):
        a = self._report("bitsliced", pairs=False)
        b = self._report("compiled", pairs=False)
        assert len(a.results) == len(b.results)
        for ra, rb in zip(a.results, b.results):
            assert ra.probe_names == rb.probe_names
            assert ra.g_statistic == rb.g_statistic
            assert ra.dof == rb.dof
            assert ra.mlog10p == rb.mlog10p

    def test_pairs_reports_identical(self):
        a = self._report("bitsliced", pairs=True)
        b = self._report("compiled", pairs=True)
        assert len(a.results) == len(b.results)
        for ra, rb in zip(a.results, b.results):
            assert ra.g_statistic == rb.g_statistic
            assert ra.mlog10p == rb.mlog10p
