"""Tests for GF(2) helpers and linear algebra."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import FieldError
from repro.gf.gf2 import (
    bit,
    gf2_matrix_identity,
    gf2_matrix_inverse,
    gf2_matrix_multiply,
    gf2_matrix_rank,
    gf2_matrix_transpose,
    gf2_matrix_vector,
    parity,
    popcount,
)


class TestBitHelpers:
    def test_bit_extracts_positions(self):
        assert bit(0b1010, 0) == 0
        assert bit(0b1010, 1) == 1
        assert bit(0b1010, 3) == 1
        assert bit(0b1010, 4) == 0

    def test_popcount_known_values(self):
        assert popcount(0) == 0
        assert popcount(0xFF) == 8
        assert popcount(0b1011) == 3

    def test_popcount_rejects_negative(self):
        with pytest.raises(FieldError):
            popcount(-1)

    @given(st.integers(min_value=0, max_value=1 << 64))
    def test_parity_is_popcount_mod_2(self, value):
        assert parity(value) == popcount(value) % 2

    @given(
        st.integers(min_value=0, max_value=1 << 32),
        st.integers(min_value=0, max_value=1 << 32),
    )
    def test_parity_additive_under_disjoint_or(self, a, b):
        # parity(a ^ b) == parity(a) ^ parity(b) always.
        assert parity(a ^ b) == parity(a) ^ parity(b)


class TestMatrixVector:
    def test_identity_action(self):
        identity = gf2_matrix_identity(8)
        for v in (0, 1, 0x5A, 0xFF):
            assert gf2_matrix_vector(identity, v) == v

    def test_known_matrix(self):
        # Row 0 selects bits 0 and 1; row 1 selects bit 1.
        matrix = (0b11, 0b10)
        assert gf2_matrix_vector(matrix, 0b01) == 0b01
        assert gf2_matrix_vector(matrix, 0b10) == 0b11
        assert gf2_matrix_vector(matrix, 0b11) == 0b10

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_linearity(self, a, b):
        matrix = (0x1B, 0x8D, 0x33, 0x55, 0xF0, 0x0F, 0xA1, 0x42)
        lhs = gf2_matrix_vector(matrix, a ^ b)
        rhs = gf2_matrix_vector(matrix, a) ^ gf2_matrix_vector(matrix, b)
        assert lhs == rhs


class TestMatrixAlgebra:
    def test_multiply_with_identity(self):
        matrix = (0b101, 0b011, 0b110)
        identity = gf2_matrix_identity(3)
        assert gf2_matrix_multiply(matrix, identity) == matrix
        assert gf2_matrix_multiply(identity, matrix) == matrix

    def test_inverse_of_identity(self):
        identity = gf2_matrix_identity(5)
        assert gf2_matrix_inverse(identity) == identity

    def test_singular_matrix_rejected(self):
        with pytest.raises(FieldError):
            gf2_matrix_inverse((0b11, 0b11))

    @given(st.lists(st.integers(0, 255), min_size=8, max_size=8))
    def test_inverse_roundtrip_when_invertible(self, rows):
        matrix = tuple(rows)
        if gf2_matrix_rank(matrix) < 8:
            return
        inverse = gf2_matrix_inverse(matrix)
        product = gf2_matrix_multiply(matrix, inverse)
        assert product == gf2_matrix_identity(8)

    @given(st.integers(0, 255))
    def test_inverse_undoes_vector_action(self, v):
        matrix = (0x1F, 0x3E, 0x7C, 0xF8, 0xF1, 0xE3, 0xC7, 0x8F)  # AES-affine-like
        inverse = gf2_matrix_inverse(matrix)
        assert gf2_matrix_vector(inverse, gf2_matrix_vector(matrix, v)) == v

    def test_transpose_involution(self):
        matrix = (0b1100, 0b1010, 0b0110, 0b0001)
        double = gf2_matrix_transpose(gf2_matrix_transpose(matrix, 4), 4)
        assert double == matrix

    def test_rank_of_identity_and_zero(self):
        assert gf2_matrix_rank(gf2_matrix_identity(6)) == 6
        assert gf2_matrix_rank((0, 0, 0)) == 0
        assert gf2_matrix_rank((0b11, 0b11, 0b01)) == 2
