"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestEvaluate:
    def test_leaky_scheme_exits_nonzero(self, capsys):
        code = main(
            [
                "evaluate",
                "--design", "kronecker",
                "--scheme", "eq6",
                "--simulations", "20000",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "g7" in out

    def test_secure_scheme_exits_zero(self, capsys):
        code = main(
            [
                "evaluate",
                "--scheme", "full",
                "--simulations", "20000",
            ]
        )
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_transition_flag(self, capsys):
        code = main(
            [
                "evaluate",
                "--scheme", "eq9",
                "--transitions",
                "--simulations", "20000",
            ]
        )
        assert code == 1
        assert "transition" in capsys.readouterr().out

    def test_fixed_value_parsing(self, capsys):
        code = main(
            [
                "evaluate",
                "--design", "sbox-nokronecker",
                "--scheme", "full",
                "--fixed", "0x53",
                "--simulations", "20000",
            ]
        )
        assert code == 0
        assert "0x53" in capsys.readouterr().out

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            main(["evaluate", "--scheme", "bogus"])

    def test_json_output(self, capsys):
        import json

        code = main(
            [
                "evaluate",
                "--scheme", "full",
                "--simulations", "5000",
                "--json",
            ]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["passed"] is True

    def test_pair_mode(self, capsys):
        code = main(
            [
                "evaluate",
                "--scheme", "full",
                "--pairs",
                "--max-pairs", "40",
                "--simulations", "5000",
            ]
        )
        # a first-order design fails the pair (second-order) test
        assert code == 1

    def test_sbox2_design(self, capsys):
        code = main(
            [
                "evaluate",
                "--design", "sbox2",
                "--scheme", "second_order_full_21",
                "--simulations", "10000",
            ]
        )
        assert code == 0


class TestExact:
    def test_exact_sweep_eq9(self, capsys):
        code = main(["exact", "--scheme", "eq9"])
        assert code == 0
        assert "SECURE" in capsys.readouterr().out

    def test_exact_sweep_eq6_fails(self, capsys):
        code = main(["exact", "--scheme", "eq6"])
        assert code == 1
        assert "INSECURE" in capsys.readouterr().out


class TestSni:
    def test_standard_sni_passes(self, capsys):
        code = main(["sni"])
        assert code == 0
        assert "SNI=yes" in capsys.readouterr().out

    def test_robust_sni_fails(self, capsys):
        code = main(["sni", "--robust"])
        assert code == 1
        assert "SNI=NO" in capsys.readouterr().out


class TestReportAndVerilog:
    def test_report(self, capsys):
        assert main(["report", "--design", "kronecker"]) == 0
        out = capsys.readouterr().out
        assert "registers" in out
        assert "GE" in out

    def test_verilog_to_stdout(self, capsys):
        assert main(["verilog", "--scheme", "eq6"]) == 0
        out = capsys.readouterr().out
        assert "module" in out
        assert "endmodule" in out

    def test_verilog_to_file(self, tmp_path, capsys):
        target = tmp_path / "out.v"
        assert main(["verilog", "--output", str(target)]) == 0
        assert target.exists()
        assert "module" in target.read_text()


class TestEncrypt:
    def test_fips_vector(self, capsys):
        code = main(
            [
                "encrypt",
                "--key", "000102030405060708090a0b0c0d0e0f",
                "--plaintext", "00112233445566778899aabbccddeeff",
            ]
        )
        assert code == 0
        assert "69c4e0d86a7b0430d8cdb78070b4c55a" in capsys.readouterr().out


class TestCampaign:
    def test_leaky_scheme_exits_one(self, capsys):
        code = main(
            [
                "campaign",
                "--scheme", "eq6",
                "--simulations", "20000",
                "--chunk-size", "8192",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "blocks:" in out

    def test_secure_scheme_exits_zero(self, capsys):
        code = main(
            ["campaign", "--scheme", "full", "--simulations", "10000"]
        )
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_bad_configuration_exits_two(self, capsys):
        code = main(
            [
                "campaign",
                "--simulations", "5",
                "--windows", "10",
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_truncated_run_exits_three(self, capsys):
        code = main(
            [
                "campaign",
                "--scheme", "full",
                "--simulations", "100000",
                "--chunk-size", "4096",
                "--time-budget", "0.000001",
            ]
        )
        assert code == 3
        assert "INCONCLUSIVE" in capsys.readouterr().out

    def test_checkpoint_resume_round_trip(self, tmp_path, capsys):
        path = str(tmp_path / "ck.npz")
        args = [
            "campaign",
            "--scheme", "eq6",
            "--simulations", "20000",
            "--chunk-size", "8192",
            "--checkpoint", path,
        ]
        assert main(args) == 1
        capsys.readouterr()
        # resuming a finished campaign re-simulates nothing.
        assert main(args + ["--resume"]) == 1
        assert "resumed from block 5" in capsys.readouterr().out

    def test_workers_flag_identical_json(self, capsys):
        import json

        args = [
            "campaign",
            "--scheme", "eq6",
            "--simulations", "20000",
            "--chunk-size", "8192",
            "--json",
        ]
        assert main(args + ["--workers", "1"]) == 1
        serial = json.loads(capsys.readouterr().out)
        assert main(args + ["--workers", "2"]) == 1
        parallel = json.loads(capsys.readouterr().out)
        assert serial == parallel

    def test_batch_probes_flag(self, capsys):
        import json

        code = main(
            [
                "campaign",
                "--scheme", "eq6",
                "--simulations", "10000",
                "--batch-probes",
                "--max-pairs", "10",
                "--top", "500",
                "--json",
            ]
        )
        assert code == 1
        data = json.loads(capsys.readouterr().out)
        names = [r["probe_names"] for r in data["results"]]
        # both first-order classes and probe pairs in one report
        assert any(" x " not in n for n in names)
        assert any(" x " in n for n in names)

    def test_engine_flag_identical_json(self, capsys):
        import json

        args = [
            "evaluate",
            "--scheme", "eq6",
            "--simulations", "10000",
            "--json",
        ]
        assert main(args + ["--engine", "compiled"]) == 1
        compiled = json.loads(capsys.readouterr().out)
        assert main(args + ["--engine", "bitsliced"]) == 1
        bitsliced = json.loads(capsys.readouterr().out)
        assert compiled == bitsliced

    def test_self_check_matrix(self, capsys):
        code = main(
            ["campaign", "--self-check", "--simulations", "20000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "COVERAGE COMPLETE" in out
        assert "bypass-kronecker" in out

    def test_self_check_json(self, capsys):
        import json

        code = main(
            [
                "campaign",
                "--self-check",
                "--simulations", "20000",
                "--json",
            ]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["coverage_complete"] is True


class TestExitCodesOnErrors:
    def test_repro_error_maps_to_exit_two(self, capsys):
        code = main(
            ["evaluate", "--scheme", "full", "--simulations", "0"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestServeAndSubmit:
    def test_submit_round_trip_against_a_live_service(
        self, tmp_path, capsys
    ):
        from repro.service import EvaluationService

        service = EvaluationService(str(tmp_path / "state"), port=0)
        service.start()
        try:
            args = [
                "submit",
                "--url", service.address,
                "--design", "kronecker",
                "--scheme", "eq6",
                "--simulations", "20000",
                "--seed", "7",
                "--timeout", "120",
            ]
            code = main(args)
            out = capsys.readouterr().out
            assert code == 1  # eq6 leaks; exit codes mirror `campaign`
            assert "FAIL" in out

            # Resubmission is answered from the verdict cache.
            code = main(args + ["--json"])
            out = capsys.readouterr().out
            assert code == 1
            assert "verdict cache hit" in out
            report = json.loads(out[out.index("{"):])
            assert report["passed"] is False
            assert service.store.stats.hits == 1
        finally:
            service.stop()

    def test_submit_unreachable_service_exits_two(self, capsys):
        code = main(
            [
                "submit",
                "--url", "http://127.0.0.1:9",  # discard port, never open
                "--simulations", "1000",
                "--timeout", "5",
            ]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err
