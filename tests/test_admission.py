"""Tests for elastic admission: quotas, priority lanes, backpressure.

The runner is deliberately **not** started in most of these tests --
admitted jobs stay ``queued`` forever, which makes capacity arithmetic
exact: with ``queue_limit=N``, a burst of distinct specs must split into
exactly N accepts and burst-N rejections, no matter how the threads
interleave.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service import EvaluationService, QueueFull, QuotaExceeded
from repro.service.queue import JobQueue


def _spec(seed, **overrides):
    body = {
        "design": "kronecker",
        "scheme": "eq6",
        "n_simulations": 20_000,
        "seed": seed,
    }
    body.update(overrides)
    return body


@pytest.fixture()
def idle_service(tmp_path):
    """Service with admission wired up but no runner consuming the queue."""

    def build(**kwargs):
        kwargs.setdefault("queue_limit", 4)
        service = EvaluationService(
            str(tmp_path / "state"), port=0, **kwargs
        )
        services.append(service)
        return service

    services = []
    yield build
    for service in services:
        service.httpd.server_close()
        service.telemetry.close()


class TestBackpressure:
    def test_exact_accept_reject_split_under_concurrency(self, idle_service):
        """queue_limit=4, 12 concurrent distinct specs -> exactly 4/8."""
        service = idle_service(queue_limit=4)
        outcomes = []
        outcomes_lock = threading.Lock()
        barrier = threading.Barrier(12)

        def submit(seed):
            barrier.wait()
            try:
                status, _ = service.submit(_spec(seed))
                result = status
            except QueueFull:
                result = 429
            with outcomes_lock:
                outcomes.append(result)

        threads = [
            threading.Thread(target=submit, args=(seed,))
            for seed in range(12)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert sorted(outcomes) == [201] * 4 + [429] * 8
        metrics = service.metrics()
        assert metrics["queue"]["depth"] == 4
        # Rejected submissions leave a terminal record, not a ghost job.
        assert metrics["jobs"].get("failed", 0) == 8

    def test_rejection_carries_retry_after(self, idle_service):
        service = idle_service(queue_limit=1)
        assert service.submit(_spec(1))[0] == 201
        with pytest.raises(QueueFull) as exc_info:
            service.submit(_spec(2))
        assert exc_info.value.retry_after > 0

    def test_http_429_sets_retry_after_header(self, idle_service):
        service = idle_service(queue_limit=1)
        serve = threading.Thread(
            target=service.httpd.serve_forever, daemon=True
        )
        serve.start()
        try:

            def post(seed):
                request = urllib.request.Request(
                    f"{service.address}/v1/jobs",
                    data=json.dumps(_spec(seed)).encode(),
                    headers={"Content-Type": "application/json"},
                )
                return urllib.request.urlopen(request, timeout=30)

            with post(1) as resp:
                assert resp.status == 201
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                post(2)
            error = exc_info.value
            assert error.code == 429
            assert float(error.headers["Retry-After"]) > 0
            body = json.loads(error.read())
            assert body["retry_after"] > 0
        finally:
            service.httpd.shutdown()


class TestPriorityLanes:
    def test_lanes_drain_high_before_normal_before_low(self, idle_service):
        service = idle_service(queue_limit=8)
        ids = {}
        for seed, priority in enumerate(("low", "normal", "high"), start=1):
            _, record = service.submit(_spec(seed, priority=priority))
            ids[priority] = record["job_id"]
        by_priority = service.metrics()["queue"]["by_priority"]
        assert by_priority == {"high": 1, "normal": 1, "low": 1}
        drained = [service.queue.get(timeout=0.1) for _ in range(3)]
        assert drained == [ids["high"], ids["normal"], ids["low"]]

    def test_distinct_priorities_are_not_deduplicated(self, idle_service):
        """priority is an execution field: same verdict, separate jobs?  No
        -- it must NOT affect the cache key, so the second submit dedupes
        onto the first despite the different lane."""
        service = idle_service(queue_limit=8)
        status1, record1 = service.submit(_spec(5, priority="low"))
        status2, record2 = service.submit(_spec(5, priority="high"))
        assert (status1, status2) == (201, 200)
        assert record2["job_id"] == record1["job_id"]
        assert record2["deduplicated"] is True

    def test_low_priority_shed_before_capacity(self, idle_service):
        """With maxsize=4 the low lane sheds at depth 2; normal traffic
        still fills to capacity."""
        service = idle_service(queue_limit=4)
        assert service.submit(_spec(1, priority="low"))[0] == 201
        assert service.submit(_spec(2, priority="low"))[0] == 201
        with pytest.raises(QueueFull):
            service.submit(_spec(3, priority="low"))
        assert service.submit(_spec(4))[0] == 201
        assert service.submit(_spec(5))[0] == 201
        with pytest.raises(QueueFull):
            service.submit(_spec(6))

    def test_queue_rejects_unknown_priority(self):
        queue = JobQueue(maxsize=4)
        with pytest.raises(Exception):
            queue.put("job-x", priority="urgent")


class TestDeduplication:
    def test_concurrent_identical_specs_admit_exactly_once(
        self, idle_service
    ):
        service = idle_service(queue_limit=32)
        results = []
        results_lock = threading.Lock()
        barrier = threading.Barrier(8)

        def submit():
            barrier.wait()
            status, record = service.submit(_spec(99))
            with results_lock:
                results.append((status, record["job_id"]))

        threads = [threading.Thread(target=submit) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        statuses = sorted(status for status, _ in results)
        assert statuses == [200] * 7 + [201]
        assert len({job_id for _, job_id in results}) == 1
        assert len(service.queue) == 1


class TestTenantQuota:
    def test_quota_caps_active_jobs_per_tenant(self, idle_service):
        service = idle_service(queue_limit=16, tenant_quota=2)
        assert service.submit(_spec(1, tenant="alice"))[0] == 201
        assert service.submit(_spec(2, tenant="alice"))[0] == 201
        with pytest.raises(QuotaExceeded):
            service.submit(_spec(3, tenant="alice"))
        # Another tenant is unaffected; QuotaExceeded is a QueueFull, so
        # HTTP clients see the same 429 + Retry-After contract.
        assert service.submit(_spec(3, tenant="bob"))[0] == 201
        assert issubclass(QuotaExceeded, QueueFull)
        assert service.metrics()["admission"]["tenant_quota"] == 2

    def test_quota_rejection_is_observable(self, idle_service):
        service = idle_service(queue_limit=16, tenant_quota=1)
        service.submit(_spec(1, tenant="carol"))
        with pytest.raises(QuotaExceeded):
            service.submit(_spec(2, tenant="carol"))
        assert service.telemetry.counters().get("quota_rejected") == 1
