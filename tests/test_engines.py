"""The engine registry: the single path every component selects engines by.

Covers registry semantics (lookup, ordering, capability records, the
degradation ladder), the ladder-walking ``build_simulator`` constructor
with chaos-plane fault injection, toolchain-absent degradation telemetry
through the evaluator, the native kernel cache, record-set lazy rebuild,
and the dense pre-staged stimulus contract.
"""

import warnings

import numpy as np
import pytest

from repro import engines as engine_registry
from repro.engines import (
    DEFAULT_ENGINE,
    EngineError,
    EngineInfo,
    build_simulator,
    degradation_ladder,
    engine_names,
    engines_info,
    get_engine,
)
from repro.netlist.builder import CircuitBuilder
from repro.netlist.native import (
    NativeSimulator,
    clear_native_kernel_cache,
    native_available,
    native_kernel_cache_info,
    native_unavailable_reason,
)
from repro.netlist.simulate import SimulationError, pack_lanes

needs_native = pytest.mark.skipif(
    not native_available(), reason="no C toolchain for the native engine"
)


def _toy_netlist():
    """in0/in1 -> xor -> reg -> out, plus an unregistered AND tap."""
    builder = CircuitBuilder("toy")
    a = builder.input("a")
    b = builder.input("b")
    x = builder.xor(a, b, name="x")
    t = builder.and_(a, x, name="tap")
    r = builder.reg(x, "r")
    builder.output(r, "out")
    return builder.build(), (a, b), {"x": x, "tap": t, "r": r}


def _stimulus(inputs, seed=0):
    rng = np.random.default_rng(seed)
    frames = [
        {net: np.array([rng.integers(0, 2 ** 63)], dtype=np.uint64)
         for net in inputs}
        for _ in range(4)
    ]
    return lambda cycle: frames[cycle]


class TestRegistrySemantics:
    def test_registered_names_in_ladder_order(self):
        assert engine_names() == ("bitsliced", "compiled", "native")

    def test_default_engine_is_registered_and_toolchain_free(self):
        info = get_engine(DEFAULT_ENGINE)
        assert not info.native

    def test_unknown_engine_raises_with_catalogue(self):
        with pytest.raises(EngineError, match="registered engines"):
            get_engine("verilated")

    def test_degradation_ladder_bottoms_out_at_bitsliced(self):
        names = [info.name for info in degradation_ladder("native")]
        assert names == ["native", "compiled", "bitsliced"]
        assert [i.name for i in degradation_ladder("bitsliced")] == [
            "bitsliced"
        ]

    def test_capability_records_are_json_friendly(self):
        info = engines_info()
        assert set(info) == set(engine_names())
        assert info["native"]["native"] is True
        assert info["native"]["degrades_to"] == "compiled"
        assert info["compiled"]["schedulable"] is True
        assert info["bitsliced"]["degrades_to"] is None
        for record in info.values():
            assert isinstance(record["description"], str)

    def test_registration_rejects_invalid_names(self):
        with pytest.raises(EngineError):
            engine_registry.register_engine(
                EngineInfo(name="not a name", factory=object, description="")
            )

    def test_degradation_cycle_detected(self):
        engine_registry.register_engine(
            EngineInfo(
                name="loop_a", factory=object, description="",
                degrades_to="loop_b",
            )
        )
        engine_registry.register_engine(
            EngineInfo(
                name="loop_b", factory=object, description="",
                degrades_to="loop_a",
            )
        )
        try:
            with pytest.raises(EngineError, match="cycle"):
                degradation_ladder("loop_a")
        finally:
            engine_registry._REGISTRY.pop("loop_a", None)
            engine_registry._REGISTRY.pop("loop_b", None)


class TestBuildSimulator:
    def test_builds_requested_engine(self):
        netlist, inputs, nets = _toy_netlist()
        sim, info = build_simulator("compiled", netlist, 64)
        assert info.name == "compiled"
        trace = sim.run(_stimulus(inputs), 4, record_nets=[nets["r"]])
        assert len(trace.values) == 4

    def test_chaos_fault_walks_the_ladder(self):
        netlist, inputs, nets = _toy_netlist()
        seen = []

        def on_degrade(from_info, to_info, exc):
            seen.append((from_info.name, to_info.name, str(exc)))

        sim, info = build_simulator(
            "compiled", netlist, 64,
            decide=lambda site: site == "engine.compile",
            on_degrade=on_degrade,
        )
        assert info.name == "bitsliced"
        assert seen == [
            ("compiled", "bitsliced", "chaos: injected engine.compile fault")
        ]

    def test_chaos_everywhere_still_lands_on_bitsliced(self):
        # The last-resort engine has no chaos site and no fallback: a
        # fault plane that fails every injectable site still evaluates.
        netlist, _, _ = _toy_netlist()
        sim, info = build_simulator(
            "native", netlist, 64, decide=lambda site: True
        )
        assert info.name == "bitsliced"

    def test_exhausted_ladder_raises_last_error(self):
        def broken(netlist, n_lanes, keep_nets=None):
            raise SimulationError("toolchain exploded")

        engine_registry.register_engine(
            EngineInfo(name="flaky", factory=broken, description="test")
        )
        try:
            netlist, _, _ = _toy_netlist()
            with pytest.raises(SimulationError, match="toolchain exploded"):
                build_simulator("flaky", netlist, 64)
        finally:
            engine_registry._REGISTRY.pop("flaky", None)

    def test_ladder_engines_are_bit_identical(self):
        netlist, inputs, nets = _toy_netlist()
        record = sorted(nets.values())
        words = []
        for name in engine_names():
            if name == "native" and not native_available():
                continue
            sim, info = build_simulator(name, netlist, 64)
            assert info.name == name
            trace = sim.run(_stimulus(inputs), 4, record_nets=record)
            words.append(
                [
                    [cycle[net].tobytes() for net in record]
                    for cycle in trace.values
                ]
            )
        assert all(w == words[0] for w in words[1:])


class TestToolchainAbsentDegradation:
    def test_native_degrades_to_compiled_when_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        assert native_unavailable_reason() is not None
        netlist, _, _ = _toy_netlist()
        seen = []
        sim, info = build_simulator(
            "native", netlist, 64,
            on_degrade=lambda f, t, e: seen.append((f.name, t.name)),
        )
        assert info.name == "compiled"
        assert seen == [("native", "compiled")]

    def test_evaluator_records_degradation_and_warns(self, monkeypatch):
        from repro.core.kronecker import build_kronecker_delta
        from repro.core.optimizations import RandomnessScheme
        from repro.leakage.evaluator import LeakageEvaluator

        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        design = build_kronecker_delta(RandomnessScheme.DEMEYER_EQ6)
        evaluator = LeakageEvaluator(design.dut, seed=5, engine="native")
        with pytest.warns(RuntimeWarning, match="native"):
            report = evaluator.evaluate(fixed_secret=0, n_simulations=640)
        assert report.results
        # Permanent degradation, recorded once in provenance.
        assert evaluator.engine == "compiled"
        kinds = [d["kind"] for d in evaluator.degradations]
        assert kinds == ["engine_compiled"]
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            evaluator.evaluate(fixed_secret=0, n_simulations=640)
        assert [d["kind"] for d in evaluator.degradations] == [
            "engine_compiled"
        ]


class TestSpecIntegration:
    def test_spec_rejects_unknown_engine(self):
        from repro.errors import SpecError
        from repro.spec import EvaluationSpec

        spec = EvaluationSpec(
            design="kronecker", scheme="eq6", engine="verilated"
        )
        with pytest.raises(SpecError, match="engine"):
            spec.validate()

    def test_engine_is_an_execution_field_outside_the_cache_key(self):
        from repro.spec import EXECUTION_FIELDS, EvaluationSpec

        assert "engine" in EXECUTION_FIELDS
        a = EvaluationSpec(design="kronecker", scheme="eq6", engine="native")
        b = EvaluationSpec(
            design="kronecker", scheme="eq6", engine="bitsliced"
        )
        assert a.cache_key("feed") == b.cache_key("feed")


@needs_native
class TestNativeKernelLifecycle:
    def test_kernel_cache_grows_and_clears(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path))
        netlist, inputs, nets = _toy_netlist()
        clear_native_kernel_cache()
        assert native_kernel_cache_info().entries == 0
        NativeSimulator(netlist, 64)
        info = native_kernel_cache_info()
        assert info.entries >= 1
        assert info.builds >= 1
        # The on-disk artifacts land in the configured cache directory.
        assert any(tmp_path.iterdir())
        clear_native_kernel_cache()
        assert native_kernel_cache_info().entries == 0
        # Rebuild after clearing still works (recompiles from source).
        sim = NativeSimulator(netlist, 64)
        trace = sim.run(_stimulus(inputs), 4, record_nets=[nets["r"]])
        assert len(trace.values) == 4

    def test_record_set_outside_pins_triggers_lazy_rebuild(self):
        from repro.netlist.compile import CompiledSimulator

        netlist, inputs, nets = _toy_netlist()
        record = [nets["tap"], nets["x"]]
        native = NativeSimulator(netlist, 64)
        reference = CompiledSimulator(netlist, 64).run(
            _stimulus(inputs), 4, record_nets=record
        )
        # ``tap`` is a dead combinational net the liveness plan may have
        # recycled; recording it must rebuild with a grown pin set, not
        # return stale words.
        trace = native.run(_stimulus(inputs), 4, record_nets=record)
        for cycle in range(4):
            for net in record:
                assert np.array_equal(
                    trace.words(cycle, net), reference.words(cycle, net)
                )

    def test_dense_stimulus_shape_is_validated(self):
        netlist, inputs, nets = _toy_netlist()
        sim = NativeSimulator(netlist, 64)
        dense = sim.expand_stimulus(_stimulus(inputs), 4)
        assert dense.shape == (4, len(sim.input_nets), 1)
        with pytest.raises(SimulationError, match="dense stimulus"):
            sim.run(dense[:3], 4, record_nets=[nets["r"]])
        with pytest.raises(SimulationError, match="dense stimulus"):
            sim.run(
                dense.astype(np.int64), 4, record_nets=[nets["r"]]
            )

    def test_input_nets_order_matches_dense_rows(self):
        netlist, inputs, nets = _toy_netlist()
        sim = NativeSimulator(netlist, 64)
        assert set(sim.input_nets) == set(inputs)
        lane_a = pack_lanes(np.array([1], dtype=np.uint8))
        frames = {
            inputs[0]: lane_a,
            inputs[1]: np.zeros(1, dtype=np.uint64),
        }
        dense = sim.expand_stimulus(lambda c: frames, 1)
        row = sim.input_nets.index(inputs[0])
        assert dense[0, row, 0] == lane_a[0]
