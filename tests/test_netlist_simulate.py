"""Tests for the scalar and bitsliced simulators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.netlist.builder import CircuitBuilder
from repro.netlist.simulate import (
    BitslicedSimulator,
    ScalarSimulator,
    evaluate_combinational,
    pack_lanes,
    unpack_lanes,
    words_for_lanes,
)

from tests.strategies import input_sequences, random_circuits


class TestPacking:
    @given(st.lists(st.integers(0, 1), min_size=1, max_size=300))
    def test_pack_unpack_roundtrip(self, bits):
        words = pack_lanes(np.array(bits, dtype=np.uint8))
        recovered = unpack_lanes(words, len(bits))
        assert recovered.tolist() == bits

    def test_words_for_lanes(self):
        assert words_for_lanes(1) == 1
        assert words_for_lanes(64) == 1
        assert words_for_lanes(65) == 2
        assert words_for_lanes(1_000_000) == 15625

    def test_pack_is_lsb_first(self):
        words = pack_lanes(np.array([1, 0, 0, 0], dtype=np.uint8))
        assert int(words[0]) == 1


class TestScalarSimulator:
    def test_register_delays_one_cycle(self):
        b = CircuitBuilder("t")
        a = b.input("a")
        q = b.reg(a, "q")
        b.output(q, "y")
        nl = b.build()
        sim = ScalarSimulator(nl)
        v1 = sim.step({a: 1})
        assert v1[q] == 0  # reset value visible in cycle 0
        v2 = sim.step({a: 0})
        assert v2[q] == 1

    def test_reset_clears_state(self):
        b = CircuitBuilder("t")
        a = b.input("a")
        q = b.reg(a, "q")
        b.output(q, "y")
        nl = b.build()
        sim = ScalarSimulator(nl)
        sim.step({a: 1})
        sim.reset()
        assert sim.step({a: 0})[q] == 0

    def test_missing_input_raises(self):
        b = CircuitBuilder("t")
        a = b.input("a")
        b.output(b.not_(a), "y")
        sim = ScalarSimulator(b.build())
        with pytest.raises(SimulationError):
            sim.step({})

    def test_evaluate_combinational_helper(self):
        b = CircuitBuilder("t")
        x = b.input("x")
        y = b.input("y")
        out = b.xor(x, y)
        values = evaluate_combinational(b.build(), {x: 1, y: 1})
        assert values[out] == 0


class TestBitslicedSimulator:
    def test_lane_count_validation(self):
        b = CircuitBuilder("t")
        a = b.input("a")
        b.output(b.not_(a), "y")
        with pytest.raises(SimulationError):
            BitslicedSimulator(b.build(), 0)

    def test_stimulus_shape_checked(self):
        b = CircuitBuilder("t")
        a = b.input("a")
        b.output(b.not_(a), "y")
        nl = b.build()
        sim = BitslicedSimulator(nl, 128)
        bad = lambda cycle: {a: np.zeros(1, dtype=np.uint64)}
        with pytest.raises(SimulationError):
            sim.run(bad, 1)

    def test_missing_input_detected(self):
        b = CircuitBuilder("t")
        a = b.input("a")
        b.output(b.not_(a), "y")
        sim = BitslicedSimulator(b.build(), 64)
        with pytest.raises(SimulationError):
            sim.run(lambda cycle: {}, 1)

    def test_record_cycles_filter(self):
        b = CircuitBuilder("t")
        a = b.input("a")
        q = b.reg(a, "q")
        b.output(q, "y")
        nl = b.build()
        sim = BitslicedSimulator(nl, 64)
        stim = lambda cycle: {a: np.zeros(1, dtype=np.uint64)}
        trace = sim.run(stim, 3, record_cycles={1})
        assert trace.values[0] == {}
        assert trace.values[2] == {}
        assert q in trace.values[1]
        with pytest.raises(SimulationError):
            trace.words(0, q)

    @settings(deadline=None, max_examples=40)
    @given(data=st.data())
    def test_matches_scalar_simulator(self, data):
        """Differential test: 64 bitsliced lanes vs 64 scalar runs."""
        nl, inputs, nets = data.draw(random_circuits())
        n_lanes = 8
        sequence = data.draw(input_sequences(len(inputs) * n_lanes, (1, 4)))
        n_cycles = len(sequence)

        # Scalar reference, lane by lane.
        scalar_values = []
        for lane in range(n_lanes):
            sim = ScalarSimulator(nl)
            lane_values = []
            for cycle in range(n_cycles):
                assignment = {
                    net: sequence[cycle][i * n_lanes + lane]
                    for i, net in enumerate(inputs)
                }
                lane_values.append(sim.step(assignment))
            scalar_values.append(lane_values)

        # Bitsliced run.
        def stimulus(cycle):
            out = {}
            for i, net in enumerate(inputs):
                bits = np.array(
                    [
                        sequence[cycle][i * n_lanes + lane]
                        for lane in range(n_lanes)
                    ],
                    dtype=np.uint8,
                )
                out[net] = pack_lanes(bits)
            return out

        sim = BitslicedSimulator(nl, n_lanes)
        trace = sim.run(stimulus, n_cycles, record_nets=nets)
        for cycle in range(n_cycles):
            for net in nets:
                bits = trace.bits(cycle, net)
                for lane in range(n_lanes):
                    assert bits[lane] == scalar_values[lane][cycle][net]
