"""Tests for the scalar and bitsliced simulators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.netlist.builder import CircuitBuilder
from repro.netlist.simulate import (
    BitslicedSimulator,
    ScalarSimulator,
    evaluate_combinational,
    pack_lanes,
    unpack_lanes,
    words_for_lanes,
)

from tests.strategies import input_sequences, random_circuits


class TestPacking:
    @given(st.lists(st.integers(0, 1), min_size=1, max_size=300))
    def test_pack_unpack_roundtrip(self, bits):
        words = pack_lanes(np.array(bits, dtype=np.uint8))
        recovered = unpack_lanes(words, len(bits))
        assert recovered.tolist() == bits

    def test_words_for_lanes(self):
        assert words_for_lanes(1) == 1
        assert words_for_lanes(64) == 1
        assert words_for_lanes(65) == 2
        assert words_for_lanes(1_000_000) == 15625

    def test_pack_is_lsb_first(self):
        words = pack_lanes(np.array([1, 0, 0, 0], dtype=np.uint8))
        assert int(words[0]) == 1

    @given(st.integers(1, 4096))
    def test_words_for_lanes_matches_pack_width(self, n_lanes):
        words = pack_lanes(np.zeros(n_lanes, dtype=np.uint8))
        assert words.size == words_for_lanes(n_lanes)

    @given(st.integers(1, 300))
    def test_all_ones_roundtrip(self, n_lanes):
        bits = np.ones(n_lanes, dtype=np.uint8)
        words = pack_lanes(bits)
        # Padding lanes beyond n_lanes must stay zero in the packed words.
        total = sum(int(w).bit_count() for w in words)
        assert total == n_lanes
        assert unpack_lanes(words, n_lanes).tolist() == bits.tolist()

    def test_non_multiple_of_64_lane_counts(self):
        for n_lanes in (1, 63, 65, 127, 129, 1000):
            rng = np.random.default_rng(n_lanes)
            bits = rng.integers(0, 2, size=n_lanes, dtype=np.uint8)
            words = pack_lanes(bits)
            assert words.size == words_for_lanes(n_lanes)
            assert unpack_lanes(words, n_lanes).tolist() == bits.tolist()

    def test_single_lane(self):
        for bit in (0, 1):
            words = pack_lanes(np.array([bit], dtype=np.uint8))
            assert words.size == 1
            assert int(words[0]) == bit
            assert unpack_lanes(words, 1).tolist() == [bit]

    @given(st.integers(1, 200), st.integers(0, 2**32 - 1))
    def test_unpack_pack_word_roundtrip(self, n_lanes, seed):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, size=n_lanes, dtype=np.uint8)
        words = pack_lanes(bits)
        assert np.array_equal(pack_lanes(unpack_lanes(words, n_lanes)), words)

    def test_nonpositive_lanes_raise(self):
        for bad in (0, -1, -64):
            with pytest.raises(SimulationError):
                words_for_lanes(bad)
            with pytest.raises(SimulationError):
                unpack_lanes(np.zeros(1, dtype=np.uint64), bad)
        with pytest.raises(SimulationError):
            pack_lanes(np.empty(0, dtype=np.uint8))


class TestScalarSimulator:
    def test_register_delays_one_cycle(self):
        b = CircuitBuilder("t")
        a = b.input("a")
        q = b.reg(a, "q")
        b.output(q, "y")
        nl = b.build()
        sim = ScalarSimulator(nl)
        v1 = sim.step({a: 1})
        assert v1[q] == 0  # reset value visible in cycle 0
        v2 = sim.step({a: 0})
        assert v2[q] == 1

    def test_reset_clears_state(self):
        b = CircuitBuilder("t")
        a = b.input("a")
        q = b.reg(a, "q")
        b.output(q, "y")
        nl = b.build()
        sim = ScalarSimulator(nl)
        sim.step({a: 1})
        sim.reset()
        assert sim.step({a: 0})[q] == 0

    def test_missing_input_raises(self):
        b = CircuitBuilder("t")
        a = b.input("a")
        b.output(b.not_(a), "y")
        sim = ScalarSimulator(b.build())
        with pytest.raises(SimulationError):
            sim.step({})

    def test_evaluate_combinational_helper(self):
        b = CircuitBuilder("t")
        x = b.input("x")
        y = b.input("y")
        out = b.xor(x, y)
        values = evaluate_combinational(b.build(), {x: 1, y: 1})
        assert values[out] == 0


class TestBitslicedSimulator:
    def test_lane_count_validation(self):
        b = CircuitBuilder("t")
        a = b.input("a")
        b.output(b.not_(a), "y")
        with pytest.raises(SimulationError):
            BitslicedSimulator(b.build(), 0)

    def test_stimulus_shape_checked(self):
        b = CircuitBuilder("t")
        a = b.input("a")
        b.output(b.not_(a), "y")
        nl = b.build()
        sim = BitslicedSimulator(nl, 128)
        bad = lambda cycle: {a: np.zeros(1, dtype=np.uint64)}
        with pytest.raises(SimulationError):
            sim.run(bad, 1)

    def test_missing_input_detected(self):
        b = CircuitBuilder("t")
        a = b.input("a")
        b.output(b.not_(a), "y")
        sim = BitslicedSimulator(b.build(), 64)
        with pytest.raises(SimulationError):
            sim.run(lambda cycle: {}, 1)

    def test_record_cycles_filter(self):
        b = CircuitBuilder("t")
        a = b.input("a")
        q = b.reg(a, "q")
        b.output(q, "y")
        nl = b.build()
        sim = BitslicedSimulator(nl, 64)
        stim = lambda cycle: {a: np.zeros(1, dtype=np.uint64)}
        trace = sim.run(stim, 3, record_cycles={1})
        assert trace.values[0] == {}
        assert trace.values[2] == {}
        assert q in trace.values[1]
        with pytest.raises(SimulationError):
            trace.words(0, q)

    @settings(deadline=None, max_examples=40)
    @given(data=st.data())
    def test_matches_scalar_simulator(self, data):
        """Differential test: 64 bitsliced lanes vs 64 scalar runs."""
        nl, inputs, nets = data.draw(random_circuits())
        n_lanes = 8
        sequence = data.draw(input_sequences(len(inputs) * n_lanes, (1, 4)))
        n_cycles = len(sequence)

        # Scalar reference, lane by lane.
        scalar_values = []
        for lane in range(n_lanes):
            sim = ScalarSimulator(nl)
            lane_values = []
            for cycle in range(n_cycles):
                assignment = {
                    net: sequence[cycle][i * n_lanes + lane]
                    for i, net in enumerate(inputs)
                }
                lane_values.append(sim.step(assignment))
            scalar_values.append(lane_values)

        # Bitsliced run.
        def stimulus(cycle):
            out = {}
            for i, net in enumerate(inputs):
                bits = np.array(
                    [
                        sequence[cycle][i * n_lanes + lane]
                        for lane in range(n_lanes)
                    ],
                    dtype=np.uint8,
                )
                out[net] = pack_lanes(bits)
            return out

        sim = BitslicedSimulator(nl, n_lanes)
        trace = sim.run(stimulus, n_cycles, record_nets=nets)
        for cycle in range(n_cycles):
            for net in nets:
                bits = trace.bits(cycle, net)
                for lane in range(n_lanes):
                    assert bits[lane] == scalar_values[lane][cycle][net]
