"""Tests for the GF(2) ANF algebra."""

from itertools import product

from hypothesis import given, strategies as st

from repro.analysis.anf import BitPoly, xor_all

VARS = ("a", "b", "c", "d")


@st.composite
def polys(draw):
    """Random small polynomials over four variables."""
    n_monomials = draw(st.integers(0, 6))
    monomials = []
    for _ in range(n_monomials):
        size = draw(st.integers(0, 3))
        monomials.append(
            frozenset(draw(st.sampled_from(VARS)) for _ in range(size))
        )
    return xor_all(BitPoly((m,)) for m in monomials)


def assignments():
    for values in product((0, 1), repeat=len(VARS)):
        yield dict(zip(VARS, values))


def semantically_equal(p, q):
    return all(
        p.evaluate(a) == q.evaluate(a) for a in assignments()
    )


class TestConstructors:
    def test_constants(self):
        assert BitPoly.zero().is_zero
        assert BitPoly.one().is_one
        assert BitPoly.constant(0) == BitPoly.zero()
        assert BitPoly.constant(1) == BitPoly.one()
        assert BitPoly.constant(3) == BitPoly.one()  # LSB

    def test_var(self):
        p = BitPoly.var("x")
        assert p.evaluate({"x": 1}) == 1
        assert p.evaluate({"x": 0}) == 0
        assert p.degree == 1
        assert p.variables() == frozenset({"x"})


class TestAlgebraLaws:
    @given(polys(), polys())
    def test_xor_commutative(self, p, q):
        assert p ^ q == q ^ p

    @given(polys(), polys(), polys())
    def test_and_distributes_over_xor(self, p, q, r):
        assert p & (q ^ r) == (p & q) ^ (p & r)

    @given(polys())
    def test_xor_self_is_zero(self, p):
        assert (p ^ p).is_zero

    @given(polys())
    def test_and_idempotent_semantically(self, p):
        assert semantically_equal(p & p, p)

    @given(polys(), polys())
    def test_and_matches_semantics(self, p, q):
        r = p & q
        for a in assignments():
            assert r.evaluate(a) == (p.evaluate(a) & q.evaluate(a))

    @given(polys())
    def test_not_is_xor_one(self, p):
        assert ~p == p ^ BitPoly.one()
        for a in assignments():
            assert (~p).evaluate(a) == p.evaluate(a) ^ 1

    @given(polys(), polys())
    def test_or_matches_semantics(self, p, q):
        r = p | q
        for a in assignments():
            assert r.evaluate(a) == (p.evaluate(a) | q.evaluate(a))


class TestSubstitution:
    def test_substitute_variable(self):
        p = BitPoly.var("a") & BitPoly.var("b")
        q = p.substitute("a", BitPoly.var("c") ^ BitPoly.one())
        expected = (BitPoly.var("c") ^ BitPoly.one()) & BitPoly.var("b")
        assert q == expected

    @given(polys(), polys())
    def test_substitution_is_semantic(self, p, replacement):
        q = p.substitute("a", replacement)
        for a in assignments():
            inner = dict(a)
            inner["a"] = replacement.evaluate(a)
            assert q.evaluate(a) == p.evaluate(inner)

    def test_rename(self):
        p = BitPoly.var("a") ^ (BitPoly.var("b") & BitPoly.var("a"))
        q = p.rename({"a": "x"})
        assert q.variables() == frozenset({"x", "b"})

    def test_substitute_absent_variable_is_noop(self):
        p = BitPoly.var("a")
        assert p.substitute("z", BitPoly.one()) == p


class TestDisplay:
    def test_str_of_zero_and_one(self):
        assert str(BitPoly.zero()) == "0"
        assert str(BitPoly.one()) == "1"

    def test_str_sorted_by_degree(self):
        p = (BitPoly.var("b") & BitPoly.var("a")) ^ BitPoly.var("c") ^ BitPoly.one()
        assert str(p) == "1 + c + a*b"

    def test_hashable(self):
        assert len({BitPoly.var("a"), BitPoly.var("a"), BitPoly.var("b")}) == 2
