"""Cross-validation of the exact certification stack against the samplers.

The paper's design-table rows (full randomness, De Meyer eq. 6, proposed
eq. 9) are decided three independent ways -- sharded exhaustive
enumeration, the Monte-Carlo campaign, and the compositional certificate --
and the verdicts must coincide.
"""

import pytest

from repro.core.kronecker import build_kronecker_delta
from repro.core.optimizations import RandomnessScheme
from repro.leakage.certify import CompositionalChecker, run_exact_analysis
from repro.leakage.evaluator import LeakageEvaluator
from repro.leakage.model import ProbingModel
from repro.spec import EvaluationSpec

#: the sampled leaks under test are enormous; a modest budget decides them
#: with overwhelming confidence (matches the evaluator's own test budget).
N_SIMS = 30_000

#: (scheme, exactly/secure) -- the paper's design-table verdicts.
ROWS = [
    (RandomnessScheme.FULL, True),
    (RandomnessScheme.DEMEYER_EQ6, False),
    (RandomnessScheme.PROPOSED_EQ9, True),
]


def _exact(design):
    return run_exact_analysis(
        design.dut, max_enum_bits=23, workers=2, shard_lane_bits=12
    )


class TestExactAgreesWithSampler:
    @pytest.mark.parametrize(
        "scheme,secure", ROWS, ids=[s.name.lower() for s, _ in ROWS]
    )
    def test_design_table_row(self, scheme, secure):
        design = build_kronecker_delta(scheme)
        exact = _exact(design)
        assert exact.status == "complete"
        assert exact.passed is secure

        sampled = LeakageEvaluator(
            design.dut, ProbingModel.GLITCH, seed=11
        ).evaluate(n_simulations=N_SIMS)
        assert sampled.passed == exact.passed

    def test_eq6_leak_sites_agree(self):
        """Each probe the sampler flags is an exact distribution
        difference; the exact engine never misses a sampled leak."""
        design = build_kronecker_delta(RandomnessScheme.DEMEYER_EQ6)
        exact_leaks = {
            r.probe_names for r in _exact(design).leaking_results
        }
        sampled = LeakageEvaluator(
            design.dut, ProbingModel.GLITCH, seed=11
        ).evaluate(n_simulations=N_SIMS)
        sampled_leaks = {r.probe_names for r in sampled.leaking_results}
        assert sampled_leaks
        assert sampled_leaks <= exact_leaks


class TestCertificateAgreesWithExact:
    def test_eq6_counterexamples_are_the_exact_leaks(self):
        """The compositional checker's robust counterexamples are exactly
        the six probe classes the exhaustive enumeration proves leaky."""
        design = build_kronecker_delta(RandomnessScheme.DEMEYER_EQ6)
        report = CompositionalChecker(design.dut, model="robust").check()
        assert not report.certified
        certificate_probes = {
            probe
            for counterexample in report.counterexamples
            for probe in counterexample["probes"]
        }
        exact_leaks = {
            r.probe_names for r in _exact(design).leaking_results
        }
        assert certificate_probes == exact_leaks
        for counterexample in report.counterexamples:
            assert counterexample["model"] == "exact-distribution"

    def test_eq9_certified_despite_ni_gap(self):
        """eq. 9 fails the conservative slice-NI argument at g7 yet is
        probing-secure; the exact fallback must settle it as certified."""
        design = build_kronecker_delta(RandomnessScheme.PROPOSED_EQ9)
        report = CompositionalChecker(design.dut, model="robust").check()
        assert report.certified
        assert not report.counterexamples
        exact = _exact(design)
        assert exact.passed
        confirmed = [
            g for g in report.gadgets if g.exact_confirmed is not None
        ]
        assert confirmed, "expected at least one exact-fallback decision"
        assert all(g.exact_confirmed for g in confirmed)


class TestExactSpecCaching:
    """mode="exact" jobs must key the verdict cache on the semantic
    enumeration parameters, never on the shard execution split."""

    def _spec(self, **kw):
        return EvaluationSpec.from_dict(
            dict({"design": "kronecker", "scheme": "eq6", "mode": "exact"}, **kw)
        )

    def test_cache_params_gain_exact_block(self):
        params = self._spec().cache_params("deadbeef")
        assert params["exact"] == {"max_enum_bits": 24}

    def test_sampled_specs_unchanged(self):
        spec = EvaluationSpec.from_dict(
            {"design": "kronecker", "scheme": "eq6", "mode": "first"}
        )
        assert "exact" not in spec.cache_params("deadbeef")

    def test_semantic_parameter_changes_key(self):
        a = self._spec().cache_key("deadbeef")
        b = self._spec(max_enum_bits=20).cache_key("deadbeef")
        assert a != b

    def test_shard_split_does_not_change_key(self):
        a = self._spec(shard_lane_bits=16).cache_key("deadbeef")
        b = self._spec(shard_lane_bits=8).cache_key("deadbeef")
        assert a == b

    def test_exact_and_sampled_keys_disjoint(self):
        exact = self._spec().cache_key("deadbeef")
        sampled = EvaluationSpec.from_dict(
            {"design": "kronecker", "scheme": "eq6", "mode": "first"}
        ).cache_key("deadbeef")
        assert exact != sampled

    def test_validation_bounds(self):
        from repro.errors import SpecError

        with pytest.raises(SpecError):
            self._spec(max_enum_bits=0).validate()
        with pytest.raises(SpecError):
            self._spec(shard_lane_bits=33).validate()
