"""Tests for chunked, checkpointable evaluation campaigns."""

import os
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.errors import BudgetExceeded, CheckpointError, SimulationError
from repro.leakage.campaign import (
    CampaignConfig,
    EvaluationCampaign,
    run_campaign,
)
from repro.leakage.evaluator import HistogramAccumulator, LeakageEvaluator
from repro.leakage.model import ProbingModel

N_SIMS = 20_000


def _evaluator(design, seed=7):
    return LeakageEvaluator(design.dut, ProbingModel.GLITCH, seed=seed)


def _assert_identical(report_a, report_b):
    assert len(report_a.results) == len(report_b.results)
    for a, b in zip(report_a.results, report_b.results):
        assert a.probe_names == b.probe_names
        assert a.g_statistic == b.g_statistic
        assert a.dof == b.dof
        assert a.mlog10p == b.mlog10p


class TestChunkedIdentity:
    def test_chunked_equals_single_pass(self, kronecker_eq6):
        single = _evaluator(kronecker_eq6).evaluate(n_simulations=N_SIMS)
        campaign = EvaluationCampaign(
            _evaluator(kronecker_eq6),
            CampaignConfig(n_simulations=N_SIMS, chunk_size=5_000),
        )
        chunked = campaign.run()
        assert chunked.status == "complete"
        assert campaign.progress.chunks_done > 1
        _assert_identical(single, chunked)

    def test_tables_identical_across_chunkings(self, kronecker_eq6):
        campaign = EvaluationCampaign(
            _evaluator(kronecker_eq6),
            CampaignConfig(n_simulations=N_SIMS, chunk_size=5_000),
        )
        campaign.run()
        reference = HistogramAccumulator()
        evaluator = _evaluator(kronecker_eq6)
        evaluator.accumulate(
            reference, 0, evaluator.n_lanes_for(N_SIMS, 1), 1
        )
        for table_id in reference.table_ids():
            keys_a, fixed_a, random_a = campaign.accumulator.counts(table_id)
            keys_b, fixed_b, random_b = reference.counts(table_id)
            assert np.array_equal(keys_a, keys_b)
            assert np.array_equal(fixed_a, fixed_b)
            assert np.array_equal(random_a, random_b)

    def test_pairs_mode_matches_evaluate_pairs(self, kronecker_full):
        single = _evaluator(kronecker_full).evaluate_pairs(
            n_simulations=5_000, max_pairs=30
        )
        chunked = run_campaign(
            _evaluator(kronecker_full),
            CampaignConfig(
                n_simulations=5_000,
                chunk_size=4_096,
                mode="pairs",
                max_pairs=30,
            ),
        )
        _assert_identical(single, chunked)

    def test_run_campaign_wrapper(self, kronecker_full):
        report = run_campaign(
            _evaluator(kronecker_full), CampaignConfig(n_simulations=5_000)
        )
        assert report.status == "complete"
        assert report.passed


class TestCheckpointResume:
    def _partial_checkpoint(self, design, path, blocks):
        """Run only the first ``blocks`` blocks and checkpoint there."""
        campaign = EvaluationCampaign(
            _evaluator(design),
            CampaignConfig(
                n_simulations=N_SIMS, chunk_size=4_096, checkpoint=path
            ),
        )
        campaign.progress.blocks_total = campaign._blocks_total()
        campaign._run_chunk_with_retry(0, blocks)
        campaign.progress.blocks_done = blocks
        campaign._save_checkpoint(path, blocks)
        return campaign

    def test_resume_midway_reaches_identical_verdict(
        self, kronecker_eq6, tmp_path
    ):
        path = str(tmp_path / "ck.npz")
        self._partial_checkpoint(kronecker_eq6, path, blocks=2)
        resumed = EvaluationCampaign(
            _evaluator(kronecker_eq6),
            CampaignConfig(
                n_simulations=N_SIMS, chunk_size=8_192, checkpoint=path
            ),
        )
        report = resumed.run(resume=True)
        assert resumed.progress.resumed_from_block == 2
        assert report.status == "complete"
        single = _evaluator(kronecker_eq6).evaluate(n_simulations=N_SIMS)
        _assert_identical(single, report)

    def test_resume_without_checkpoint_starts_fresh(
        self, kronecker_full, tmp_path
    ):
        campaign = EvaluationCampaign(
            _evaluator(kronecker_full),
            CampaignConfig(
                n_simulations=5_000,
                checkpoint=str(tmp_path / "missing.npz"),
            ),
        )
        report = campaign.run(resume=True)
        assert campaign.progress.resumed_from_block == 0
        assert report.status == "complete"

    def test_fingerprint_mismatch_rejected(self, kronecker_eq6, tmp_path):
        path = str(tmp_path / "ck.npz")
        self._partial_checkpoint(kronecker_eq6, path, blocks=1)
        other_seed = EvaluationCampaign(
            _evaluator(kronecker_eq6, seed=99),
            CampaignConfig(n_simulations=N_SIMS, checkpoint=path),
        )
        with pytest.raises(CheckpointError):
            other_seed.run(resume=True)

    def test_corrupt_checkpoint_quarantined_and_restarted(
        self, kronecker_eq6, tmp_path
    ):
        """A rotten checkpoint is quarantined, never trusted: the campaign
        restarts from block 0 and reaches the identical clean verdict."""
        path = str(tmp_path / "ck.npz")
        with open(path, "wb") as handle:
            handle.write(b"not an npz file")
        events = []
        campaign = EvaluationCampaign(
            _evaluator(kronecker_eq6),
            CampaignConfig(n_simulations=N_SIMS, checkpoint=path),
            hook=lambda event, payload: events.append((event, payload)),
        )
        report = campaign.run(resume=True)
        assert campaign.progress.resumed_from_block == 0
        assert report.status == "complete"
        assert os.path.exists(path + ".corrupt")
        names = [event for event, _ in events]
        assert "checkpoint_corrupt" in names
        assert "checkpoint_fallback" in names
        single = _evaluator(kronecker_eq6).evaluate(n_simulations=N_SIMS)
        _assert_identical(single, report)

    def test_corrupt_current_falls_back_to_prev_generation(
        self, kronecker_eq6, tmp_path
    ):
        """Torn current generation -> resume from ``.prev``, bit-identical."""
        path = str(tmp_path / "ck.npz")
        self._partial_checkpoint(kronecker_eq6, path, blocks=2)
        os.replace(path, path + ".prev")
        with open(path, "wb") as handle:
            handle.write(b"RPCKPT01 torn mid-write")
        resumed = EvaluationCampaign(
            _evaluator(kronecker_eq6),
            CampaignConfig(
                n_simulations=N_SIMS, chunk_size=8_192, checkpoint=path
            ),
        )
        report = resumed.run(resume=True)
        assert resumed.progress.resumed_from_block == 2
        assert os.path.exists(path + ".corrupt")
        single = _evaluator(kronecker_eq6).evaluate(n_simulations=N_SIMS)
        _assert_identical(single, report)

    def test_kill_and_resume_subprocess(self, kronecker_eq6, tmp_path):
        """SIGKILL a campaign mid-run; the resume completes from disk."""
        path = str(tmp_path / "ck.npz")
        child_code = (
            "from repro.core.kronecker import build_kronecker_delta\n"
            "from repro.core.optimizations import RandomnessScheme\n"
            "from repro.leakage.campaign import CampaignConfig, "
            "EvaluationCampaign\n"
            "from repro.leakage.evaluator import LeakageEvaluator\n"
            "design = build_kronecker_delta(RandomnessScheme.DEMEYER_EQ6)\n"
            "ev = LeakageEvaluator(design.dut, seed=7)\n"
            f"cfg = CampaignConfig(n_simulations={N_SIMS}, chunk_size=4096, "
            f"checkpoint={path!r})\n"
            "EvaluationCampaign(ev, cfg).run()\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        child = subprocess.Popen(
            [sys.executable, "-c", child_code],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 60
            while not os.path.exists(path):
                if child.poll() is not None or time.monotonic() > deadline:
                    break
                time.sleep(0.01)
            child.kill()
        finally:
            child.wait()
        assert os.path.exists(path), "child never wrote a checkpoint"

        resumed = EvaluationCampaign(
            _evaluator(kronecker_eq6),
            CampaignConfig(
                n_simulations=N_SIMS, chunk_size=4_096, checkpoint=path
            ),
        )
        report = resumed.run(resume=True)
        assert report.status == "complete"
        single = _evaluator(kronecker_eq6).evaluate(n_simulations=N_SIMS)
        _assert_identical(single, report)


class TestBudgetsAndEarlyStop:
    def test_time_budget_truncates(self, kronecker_full):
        report = run_campaign(
            _evaluator(kronecker_full),
            CampaignConfig(
                n_simulations=N_SIMS, chunk_size=4_096, time_budget=1e-9
            ),
        )
        assert report.status == "truncated:time-budget"
        assert report.truncated
        assert "INCONCLUSIVE" in report.format_summary()

    def test_time_budget_raises_in_strict_mode(self, kronecker_full):
        with pytest.raises(BudgetExceeded):
            run_campaign(
                _evaluator(kronecker_full),
                CampaignConfig(
                    n_simulations=N_SIMS,
                    chunk_size=4_096,
                    time_budget=1e-9,
                    on_budget="raise",
                ),
            )

    def test_early_stop_on_decisive_leak(self, kronecker_eq6):
        campaign = EvaluationCampaign(
            _evaluator(kronecker_eq6),
            CampaignConfig(
                n_simulations=N_SIMS, chunk_size=4_096, early_stop=10.0
            ),
        )
        report = campaign.run()
        assert report.status == "truncated:early-stop"
        assert not report.passed
        assert campaign.progress.blocks_done < campaign.progress.blocks_total

    def test_memory_error_retries_with_smaller_chunks(
        self, kronecker_full, monkeypatch
    ):
        evaluator = _evaluator(kronecker_full)
        single = _evaluator(kronecker_full).evaluate(n_simulations=N_SIMS)
        original = LeakageEvaluator.accumulate
        failed = []

        def flaky(self, acc, fixed_secret, n_lanes, n_windows, **kwargs):
            blocks = list(kwargs.get("blocks") or [])
            if len(blocks) > 1 and not failed:
                failed.append(blocks)
                raise MemoryError("simulated allocation failure")
            return original(
                self, acc, fixed_secret, n_lanes, n_windows, **kwargs
            )

        monkeypatch.setattr(LeakageEvaluator, "accumulate", flaky)
        campaign = EvaluationCampaign(
            evaluator, CampaignConfig(n_simulations=N_SIMS)
        )
        report = campaign.run()
        assert failed, "fault was never injected"
        assert campaign.progress.retries >= 1
        assert report.status == "complete"
        _assert_identical(single, report)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mode": "third"},
            {"on_budget": "explode"},
            {"chunk_size": 0},
            {"time_budget": 0.0},
            {"early_stop": -1.0},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(SimulationError):
            CampaignConfig(n_simulations=1000, **kwargs)

    def test_fingerprint_excludes_chunk_size(self, kronecker_full):
        small = EvaluationCampaign(
            _evaluator(kronecker_full),
            CampaignConfig(n_simulations=N_SIMS, chunk_size=1_000),
        )
        large = EvaluationCampaign(
            _evaluator(kronecker_full),
            CampaignConfig(n_simulations=N_SIMS, chunk_size=10_000),
        )
        assert small.fingerprint() == large.fingerprint()
