"""Tests for the randomness-reuse schemes (paper Eq. (6), Eq. (9), ...)."""

import pytest

from repro.core.optimizations import (
    FIRST_ORDER_SCHEMES,
    GATES,
    RandomnessScheme,
    SecondOrderScheme,
    scheme_fresh_bits,
)
from repro.errors import MaskingError
from repro.masking.randomness import MaskBus
from repro.netlist.builder import CircuitBuilder


def wire(scheme):
    builder = CircuitBuilder("w")
    bus = MaskBus(builder)
    return scheme.wire(bus), bus, builder


class TestFirstOrderWirings:
    def test_full_uses_seven_distinct_bits(self):
        wiring, bus, _ = wire(RandomnessScheme.FULL)
        assert len(set(wiring.values())) == 7
        assert bus.n_fresh_bits == 7

    def test_demeyer_eq6_identities(self):
        """Equation (6): r1=r3, r2=r4, r6=[r5^r2], r7=r1; 3 fresh bits."""
        wiring, bus, builder = wire(RandomnessScheme.DEMEYER_EQ6)
        assert wiring[1] == wiring[3]
        assert wiring[2] == wiring[4]
        assert wiring[7] == wiring[1]
        assert wiring[6] not in (wiring[5], wiring[2])
        assert bus.n_fresh_bits == 3
        # r6 is a register output (the bracketed combination).
        driver = builder.netlist.driver(wiring[6])
        assert driver is not None and driver.cell_type.is_sequential

    def test_proposed_eq9_identities(self):
        """Equation (9): r5=r4, r6=r2, r7=r3 over fresh r1..r4."""
        wiring, bus, _ = wire(RandomnessScheme.PROPOSED_EQ9)
        assert len({wiring[g] for g in (1, 2, 3, 4)}) == 4
        assert wiring[5] == wiring[4]
        assert wiring[6] == wiring[2]
        assert wiring[7] == wiring[3]
        assert bus.n_fresh_bits == 4

    @pytest.mark.parametrize(
        "scheme,reused",
        [
            (RandomnessScheme.TRANSITION_R7_EQ_R1, 1),
            (RandomnessScheme.TRANSITION_R7_EQ_R2, 2),
            (RandomnessScheme.TRANSITION_R7_EQ_R3, 3),
            (RandomnessScheme.TRANSITION_R7_EQ_R4, 4),
        ],
    )
    def test_transition_solutions(self, scheme, reused):
        """The four Section-IV solutions: r1..r6 fresh, r7 = r_i."""
        wiring, bus, _ = wire(scheme)
        assert wiring[7] == wiring[reused]
        assert len({wiring[g] for g in (1, 2, 3, 4, 5, 6)}) == 6
        assert bus.n_fresh_bits == 6

    def test_minimal_leaky_case(self):
        wiring, bus, _ = wire(RandomnessScheme.FIRST_LAYER_R1R3)
        assert wiring[1] == wiring[3]
        assert bus.n_fresh_bits == 6

    def test_second_layer_counterexample(self):
        wiring, bus, _ = wire(RandomnessScheme.SECOND_LAYER_R5R6)
        assert wiring[5] == wiring[6]
        assert bus.n_fresh_bits == 6

    def test_fresh_bit_table_matches_wirings(self):
        for scheme in FIRST_ORDER_SCHEMES:
            _, bus, _ = wire(scheme)
            assert bus.n_fresh_bits == scheme_fresh_bits(scheme)

    def test_every_gate_wired(self):
        for scheme in FIRST_ORDER_SCHEMES:
            wiring, _, _ = wire(scheme)
            assert set(wiring) == set(GATES)


class TestExpectedVerdicts:
    def test_paper_glitch_verdicts(self):
        expected_secure = {
            RandomnessScheme.FULL,
            RandomnessScheme.PROPOSED_EQ9,
            RandomnessScheme.TRANSITION_R7_EQ_R1,
            RandomnessScheme.TRANSITION_R7_EQ_R2,
            RandomnessScheme.TRANSITION_R7_EQ_R3,
            RandomnessScheme.TRANSITION_R7_EQ_R4,
        }
        for scheme in FIRST_ORDER_SCHEMES:
            assert scheme.expected_glitch_secure == (scheme in expected_secure)

    def test_paper_transition_verdicts(self):
        # "none of the optimizations discussed above can maintain security
        # under glitch- and transition-extended probing models" except the
        # four r7=r_i solutions and the unoptimized baseline.
        assert RandomnessScheme.FULL.expected_transition_secure
        assert not RandomnessScheme.PROPOSED_EQ9.expected_transition_secure
        assert not RandomnessScheme.DEMEYER_EQ6.expected_transition_secure
        assert RandomnessScheme.TRANSITION_R7_EQ_R2.expected_transition_secure


class TestSecondOrderWirings:
    def test_full_21(self):
        builder = CircuitBuilder("w")
        bus = MaskBus(builder)
        wiring = SecondOrderScheme.FULL_21.wire(bus)
        nets = [n for gate in wiring.values() for n in gate.values()]
        assert len(set(nets)) == 21
        assert bus.n_fresh_bits == 21
        assert SecondOrderScheme.FULL_21.fresh_bits == 21

    def test_opt_13_fresh_count(self):
        builder = CircuitBuilder("w")
        bus = MaskBus(builder)
        SecondOrderScheme.OPT_13.wire(bus)
        assert bus.n_fresh_bits == 13
        assert SecondOrderScheme.OPT_13.fresh_bits == 13

    def test_opt_13_layer2_masks_are_derived_logic(self):
        builder = CircuitBuilder("w")
        bus = MaskBus(builder)
        wiring = SecondOrderScheme.OPT_13.wire(bus)
        for pair, net in wiring[5].items():
            driver = builder.netlist.driver(net)
            assert driver is not None  # not a raw input wire

    def test_opt_13_naive_reuses_directly(self):
        builder = CircuitBuilder("w")
        bus = MaskBus(builder)
        wiring = SecondOrderScheme.OPT_13_NAIVE.wire(bus)
        assert wiring[5] == wiring[4]
        assert wiring[6] == wiring[2]
        assert bus.n_fresh_bits == 13

    def test_expected_verdicts(self):
        assert SecondOrderScheme.FULL_21.expected_secure
        assert SecondOrderScheme.OPT_13.expected_secure
        assert not SecondOrderScheme.OPT_13_NAIVE.expected_secure

    def test_all_gates_have_three_masks(self):
        for scheme in SecondOrderScheme:
            builder = CircuitBuilder("w")
            bus = MaskBus(builder)
            wiring = scheme.wire(bus)
            for gate in GATES:
                assert set(wiring[gate]) == {(0, 1), (0, 2), (1, 2)}
