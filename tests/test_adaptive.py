"""Tests for adaptive per-probe scheduling (:mod:`repro.leakage.adaptive`).

Two properties carry the feature:

* **verdict parity** -- an adaptive campaign must reach the same verdict
  and flag the same leaking probes as the uniform-budget run it replaces
  (E3/E4 in ``EXPERIMENTS.md``), while spending fewer probe-samples;
* **adaptive-off identity** -- with the scheduler disabled the campaign's
  accumulated tables must stay bit-identical to a plain ``evaluate()``
  pass, so existing results and checkpoints are untouched.
"""

import os
import warnings
from types import SimpleNamespace

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.leakage.adaptive import (
    DECIDED_LEAKY,
    DECIDED_NULL,
    UNDECIDED,
    AdaptiveConfig,
    AdaptiveScheduler,
)
from repro.leakage.campaign import CampaignConfig, EvaluationCampaign
from repro.leakage.evaluator import HistogramAccumulator, LeakageEvaluator
from repro.leakage.model import ProbingModel
from repro.service.runner import build_design

N_SIMS = 20_000


@pytest.fixture(scope="module")
def kronecker_eq6():
    return build_design("kronecker", "eq6").dut


@pytest.fixture(scope="module")
def kronecker_full():
    return build_design("kronecker", "full").dut


def _evaluator(dut, seed=7):
    return LeakageEvaluator(dut, ProbingModel.GLITCH, seed=seed)


def _config(**kwargs):
    kwargs.setdefault("n_simulations", N_SIMS)
    kwargs.setdefault("chunk_size", 8_192)
    kwargs.setdefault("adaptive", AdaptiveConfig())
    return CampaignConfig(**kwargs)


class _StubAccumulator:
    """Accumulator double returning scripted -log10(p) per table."""

    def __init__(self, mlog10p):
        self.mlog10p = dict(mlog10p)

    def test(self, table_id):
        return SimpleNamespace(mlog10p=self.mlog10p[table_id])


class TestAdaptiveConfig:
    def test_round_trip(self):
        config = AdaptiveConfig(decide_threshold=6.0, max_budget_factor=2.0)
        assert AdaptiveConfig.from_dict(config.to_dict()) == config

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"decide_threshold": 0.0},
            {"null_threshold": -1.0},
            {"null_threshold": 6.0},  # above decide_threshold
            {"decide_chunks": 0},
            {"min_null_samples": 0},
            {"max_budget_factor": 0.9},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(SimulationError):
            AdaptiveConfig(**kwargs)


class TestSchedulerDecisions:
    def _scheduler(self, **kwargs):
        kwargs.setdefault("decide_chunks", 2)
        kwargs.setdefault("min_null_samples", 100)
        return AdaptiveScheduler(AdaptiveConfig(**kwargs), n_classes=2)

    def test_leaky_after_consecutive_chunks(self):
        sched = self._scheduler()
        acc = _StubAccumulator({"c0": 9.0, "c1": 1.0})
        assert sched.observe(acc, 50) == []  # streak 1, below min samples
        decided = sched.observe(acc, 50)
        assert [s.table_id for s in decided] == ["c0"]
        assert sched.states()["c0"].state == DECIDED_LEAKY
        assert sched.states()["c0"].decided_at_chunk == 2
        # c1 reached min_null_samples only at the second boundary
        assert sched.states()["c1"].state == UNDECIDED
        decided = sched.observe(acc, 50)
        assert [s.table_id for s in decided] == ["c1"]
        assert sched.states()["c1"].state == DECIDED_NULL
        assert sched.all_decided()

    def test_oscillating_evidence_resets_streaks(self):
        sched = self._scheduler()
        high = _StubAccumulator({"c0": 9.0, "c1": 9.0})
        mid = _StubAccumulator({"c0": 4.5, "c1": 4.5})  # between thresholds
        sched.observe(high, 200)
        sched.observe(mid, 200)
        sched.observe(high, 200)
        assert not sched.states()["c0"].decided
        sched.observe(high, 200)
        assert sched.states()["c0"].state == DECIDED_LEAKY

    def test_null_needs_min_samples(self):
        sched = self._scheduler(min_null_samples=10_000)
        low = _StubAccumulator({"c0": 0.5, "c1": 0.5})
        for _ in range(5):
            sched.observe(low, 100)
        assert all(not s.decided for s in sched.states().values())

    def test_decided_probes_frozen(self):
        sched = self._scheduler()
        acc = _StubAccumulator({"c0": 9.0, "c1": 9.0})
        sched.observe(acc, 50)
        sched.observe(acc, 50)
        assert sched.all_decided()
        samples = sched.states()["c0"].n_samples
        sched.observe(_StubAccumulator({"c0": 0.0, "c1": 0.0}), 50)
        assert sched.states()["c0"].state == DECIDED_LEAKY
        assert sched.states()["c0"].n_samples == samples

    def test_pair_pruned_only_when_all_offsets_decided(self):
        sched = AdaptiveScheduler(
            AdaptiveConfig(decide_chunks=1, min_null_samples=1),
            n_classes=0,
            pairs=[(0, 1)],
            pair_offsets=(0, 1),
        )
        acc = _StubAccumulator({"p0:1:0": 9.0, "p0:1:1": 4.5})
        sched.observe(acc, 50)
        assert sched.states()["p0:1:0"].decided
        assert sched.active_pairs() == [(0, 1)]  # offset 1 still open
        sched.observe(_StubAccumulator({"p0:1:1": 9.0}), 50)
        assert sched.active_pairs() == []

    def test_state_round_trip(self):
        sched = self._scheduler()
        sched.observe(_StubAccumulator({"c0": 9.0, "c1": 1.0}), 50)
        restored = AdaptiveScheduler.from_state(sched.to_state())
        assert restored.chunks_observed == sched.chunks_observed
        assert {
            k: v.to_dict() for k, v in restored.states().items()
        } == {k: v.to_dict() for k, v in sched.states().items()}

    def test_needs_at_least_one_table(self):
        with pytest.raises(SimulationError):
            AdaptiveScheduler(AdaptiveConfig(), n_classes=0)


class TestAdaptiveCampaign:
    def test_verdict_parity_with_uniform_run(self, kronecker_eq6):
        uniform = EvaluationCampaign(
            _evaluator(kronecker_eq6),
            CampaignConfig(n_simulations=N_SIMS, chunk_size=8_192),
        ).run()
        campaign = EvaluationCampaign(_evaluator(kronecker_eq6), _config())
        report = campaign.run()
        assert report.passed == uniform.passed
        assert {r.probe_names for r in report.leaking_results} == {
            r.probe_names for r in uniform.leaking_results
        }
        adaptive = report.adaptive
        assert adaptive["decided_leaky"] == len(uniform.leaking_results)
        leaky_ids = {
            table_id
            for table_id, probe in adaptive["probes"].items()
            if probe["state"] == DECIDED_LEAKY
        }
        assert len(leaky_ids) == adaptive["decided_leaky"]

    def test_early_finish_spends_less(self, kronecker_eq6):
        events = []
        campaign = EvaluationCampaign(
            _evaluator(kronecker_eq6),
            _config(n_simulations=100_000),
            hook=lambda e, p: events.append((e, p)),
        )
        report = campaign.run()
        assert report.status == "complete"
        assert campaign.progress.blocks_done < campaign.progress.blocks_total
        assert report.n_simulations < 100_000
        assert report.adaptive["undecided"] == 0
        assert report.adaptive["probe_sample_savings"] > 1.0
        names = {e for e, _ in events}
        assert "probe_decided" in names
        assert "adaptive_finished_early" in names

    def test_adaptive_off_tables_bit_identical_to_evaluate(
        self, kronecker_eq6
    ):
        evaluator = _evaluator(kronecker_eq6)
        campaign = EvaluationCampaign(
            evaluator,
            CampaignConfig(n_simulations=N_SIMS, chunk_size=4_096),
        )
        report = campaign.run()
        assert report.adaptive is None
        assert "adaptive" not in report.to_dict()
        reference = HistogramAccumulator()
        evaluator.accumulate(
            reference, 0, evaluator.n_lanes_for(N_SIMS, 1), 1
        )
        ids_c, arrays_c = campaign.accumulator.state_arrays()
        ids_r, arrays_r = reference.state_arrays()
        assert ids_c == ids_r
        assert all(
            np.array_equal(arrays_c[key], arrays_r[key]) for key in arrays_r
        )

    def test_kill_and_resume_reaches_identical_decisions(
        self, kronecker_eq6, tmp_path
    ):
        checkpoint = str(tmp_path / "adaptive.npz")
        straight = EvaluationCampaign(
            _evaluator(kronecker_eq6), _config(n_simulations=40_000)
        ).run()

        polls = {"n": 0}

        def stop_after_one_chunk():
            polls["n"] += 1
            return polls["n"] > 1

        interrupted = EvaluationCampaign(
            _evaluator(kronecker_eq6),
            _config(n_simulations=40_000, checkpoint=checkpoint),
            should_stop=stop_after_one_chunk,
        )
        partial = interrupted.run()
        assert partial.status == "truncated:cancelled"
        assert os.path.exists(checkpoint)

        resumed_campaign = EvaluationCampaign(
            _evaluator(kronecker_eq6),
            _config(n_simulations=40_000, checkpoint=checkpoint),
        )
        resumed = resumed_campaign.run(resume=True)
        assert resumed_campaign.progress.resumed_from_block > 0
        assert resumed.status == "complete"
        assert resumed.adaptive["probes"] == straight.adaptive["probes"]
        assert resumed.n_simulations == straight.n_simulations

    def test_escalation_extends_budget_up_to_cap(self, kronecker_full):
        # A null threshold nothing can fall below keeps every secure probe
        # undecided, forcing escalation to the 2x hard cap.
        config = CampaignConfig(
            n_simulations=8_192,
            chunk_size=4_096,
            adaptive=AdaptiveConfig(
                null_threshold=1e-4, max_budget_factor=2.0
            ),
        )
        events = []
        campaign = EvaluationCampaign(
            _evaluator(kronecker_full, seed=3),
            config,
            hook=lambda e, p: events.append((e, p)),
        )
        report = campaign.run()
        assert any(e == "adaptive_escalated" for e, _ in events)
        assert report.n_simulations > 8_192
        adaptive = report.adaptive
        assert adaptive["probe_samples_spent"] <= (
            2 * 8_192 * adaptive["n_tables"]
        )

    def test_no_escalation_at_factor_one(self, kronecker_full):
        config = CampaignConfig(
            n_simulations=8_192,
            chunk_size=4_096,
            adaptive=AdaptiveConfig(null_threshold=1e-4),
        )
        campaign = EvaluationCampaign(_evaluator(kronecker_full), config)
        report = campaign.run()
        assert report.n_simulations == 8_192
        assert report.adaptive["undecided"] > 0

    def test_adaptive_requires_chunking(self):
        with pytest.raises(SimulationError):
            CampaignConfig(n_simulations=1_000, adaptive=AdaptiveConfig())


class TestTableIdStability:
    def test_class_indices_keep_original_table_ids(self, kronecker_eq6):
        evaluator = _evaluator(kronecker_eq6)
        n_lanes = evaluator.n_lanes_for(4_096, 1)
        full = HistogramAccumulator()
        evaluator.accumulate(full, 0, n_lanes, 1)
        pruned = HistogramAccumulator()
        evaluator.accumulate(pruned, 0, n_lanes, 1, class_indices=[3, 5])
        assert set(pruned.table_ids()) == {"c3", "c5"}
        for table_id in pruned.table_ids():
            keys_p, fixed_p, random_p = pruned.counts(table_id)
            keys_f, fixed_f, random_f = full.counts(table_id)
            assert np.array_equal(keys_p, keys_f)
            assert np.array_equal(fixed_p, fixed_f)
            assert np.array_equal(random_p, random_f)

    def test_classes_and_class_indices_conflict(self, kronecker_eq6):
        evaluator = _evaluator(kronecker_eq6)
        with pytest.raises(SimulationError):
            evaluator.accumulate(
                HistogramAccumulator(), 0, 4_096, 1,
                classes=evaluator.probe_classes[:1], class_indices=[0],
            )


class TestDeprecatedWrappers:
    def test_wrappers_removed_after_deprecation_cycle(self, kronecker_eq6):
        evaluator = _evaluator(kronecker_eq6)
        assert not hasattr(evaluator, "accumulate_first_order")
        assert not hasattr(evaluator, "accumulate_batched")

    def test_new_path_emits_no_deprecation_warning(self, kronecker_eq6):
        evaluator = _evaluator(kronecker_eq6)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            evaluator.accumulate(
                HistogramAccumulator(), 0,
                evaluator.n_lanes_for(4_096, 1), 1,
            )
