"""Tests for probe extraction and deduplication."""

from repro.leakage.model import ProbingModel
from repro.leakage.probes import (
    ProbeClass,
    default_probe_nets,
    extract_probe_classes,
)
from repro.netlist.builder import CircuitBuilder


def pipeline():
    b = CircuitBuilder("p")
    a = b.input("a")
    c = b.input("c")
    q = b.reg(b.not_(a, "inv"), "q")
    g = b.and_(q, c, "g")
    h = b.or_(q, c, "h")  # same support as g
    b.output(g, "og")
    b.output(h, "oh")
    return b.build()


class TestModel:
    def test_cycles_back(self):
        assert ProbingModel.GLITCH.cycles_back == (0,)
        assert ProbingModel.GLITCH_TRANSITION.cycles_back == (0, 1)

    def test_descriptions(self):
        assert "glitch" in ProbingModel.GLITCH.description
        assert "transition" in ProbingModel.GLITCH_TRANSITION.description


class TestExtraction:
    def test_default_probes_exclude_constants(self):
        b = CircuitBuilder("t")
        a = b.input("a")
        b.output(b.and_(a, b.constant(1)), "y")
        nets = default_probe_nets(b.build())
        assert b.constant(1) not in nets

    def test_identical_supports_grouped(self):
        nl = pipeline()
        classes, skipped = extract_probe_classes(nl, ProbingModel.GLITCH)
        assert not skipped
        # g and h (and the output buffers) share the support {q, c}.
        supports = {pc.support: pc for pc in classes}
        target = frozenset({nl.net("q"), nl.net("c")})
        matching = [
            pc for pc in classes if set(pc.support) == set(target)
        ]
        assert len(matching) == 1
        members = {nl.net_name(n) for n in matching[0].members}
        assert "g" in members and "h" in members

    def test_register_probe_is_singleton(self):
        nl = pipeline()
        classes, _ = extract_probe_classes(nl, ProbingModel.GLITCH)
        q = nl.net("q")
        qc = next(pc for pc in classes if pc.members == (q,))
        assert qc.support == (q,)

    def test_transition_doubles_observation(self):
        nl = pipeline()
        classes, _ = extract_probe_classes(
            nl, ProbingModel.GLITCH_TRANSITION
        )
        for pc in classes:
            assert pc.observation_bits == 2 * len(pc.support)

    def test_wide_supports_skipped(self):
        b = CircuitBuilder("wide")
        bus = b.input_bus("x", 30)
        b.output(b.xor_reduce(bus), "y")
        classes, skipped = extract_probe_classes(
            b.build(), ProbingModel.GLITCH, max_support_bits=8
        )
        assert skipped
        assert all(len(pc.support) <= 8 for pc in classes)

    def test_over_63_bit_observation_always_skipped(self):
        b = CircuitBuilder("huge")
        bus = b.input_bus("x", 40)
        b.output(b.xor_reduce(bus), "y")
        classes, skipped = extract_probe_classes(
            b.build(), ProbingModel.GLITCH_TRANSITION
        )
        wide = [pc for pc in skipped if len(pc.support) == 40]
        assert wide  # 40 x 2 cycles = 80 bits > 63

    def test_member_names_truncate(self):
        nl = pipeline()
        classes, _ = extract_probe_classes(nl, ProbingModel.GLITCH)
        for pc in classes:
            text = pc.member_names(nl, limit=1)
            if len(pc.members) > 1:
                assert "more" in text

    def test_explicit_probe_list(self):
        nl = pipeline()
        g = nl.net("g")
        classes, _ = extract_probe_classes(
            nl, ProbingModel.GLITCH, probe_nets=[g]
        )
        assert len(classes) == 1
        assert classes[0].members == (g,)
