"""Tests for the Boolean <-> multiplicative masking conversions."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.conversions import (
    boolean_to_multiplicative,
    multiplicative_to_boolean,
)
from repro.gf.gf256 import GF256
from repro.netlist.builder import CircuitBuilder
from repro.netlist.simulate import ScalarSimulator


def build_b2m():
    b = CircuitBuilder("b2m_t")
    b0 = b.input_bus("b0", 8)
    b1 = b.input_bus("b1", 8)
    r = b.input_bus("r", 8)
    p0, p1 = boolean_to_multiplicative(b, b0, b1, r)
    b.output_bus(p0, "p0")
    b.output_bus(p1, "p1")
    return b.build(), (b0, b1, r)


def build_m2b():
    b = CircuitBuilder("m2b_t")
    q0 = b.input_bus("q0", 8)
    q1 = b.input_bus("q1", 8)
    rp = b.input_bus("rp", 8)
    b0, b1 = multiplicative_to_boolean(b, q0, q1, rp)
    b.output_bus(b0, "bo0")
    b.output_bus(b1, "bo1")
    return b.build(), (q0, q1, rp)


def drive(netlist, buses, byte_values, cycles=3):
    sim = ScalarSimulator(netlist)
    values = None
    for _ in range(cycles):
        assignment = {}
        for bus, value in zip(buses, byte_values):
            for i, net in enumerate(bus):
                assignment[net] = (value >> i) & 1
        values = sim.step(assignment)
    return values


def read(netlist, values, name):
    return sum(
        values[netlist.net(f"{name}[{i}]")] << i for i in range(8)
    )


bytes_ = st.integers(0, 255)
nonzero = st.integers(1, 255)


class TestBooleanToMultiplicative:
    @settings(max_examples=60, deadline=None)
    @given(bytes_, bytes_, nonzero)
    def test_conversion_equation(self, b0, b1, r):
        """P0 = R and (P0)^-1 x P1 recombines to X (Section II-C)."""
        netlist, buses = build_b2m()
        values = drive(netlist, buses, (b0, b1, r))
        p0 = read(netlist, values, "p0")
        p1 = read(netlist, values, "p1")
        assert p0 == r
        x = b0 ^ b1
        assert p1 == GF256.multiply(x, r)
        if x != 0:
            assert GF256.multiply(GF256.inverse(p0), p1) == x

    def test_zero_value_problem(self):
        """X = 0 forces P1 = 0: the paper's Section II-B flaw, visibly."""
        netlist, buses = build_b2m()
        values = drive(netlist, buses, (0x5A, 0x5A, 0x37))
        assert read(netlist, values, "p1") == 0

    def test_single_cycle_latency(self):
        netlist, buses = build_b2m()
        sim = ScalarSimulator(netlist)
        assignment = {}
        for bus, value in zip(buses, (0x12, 0x34, 0x07)):
            for i, net in enumerate(bus):
                assignment[net] = (value >> i) & 1
        first = sim.step(assignment)
        assert read(netlist, first, "p0") == 0  # registers still reset
        second = sim.step(assignment)
        assert read(netlist, second, "p0") == 0x07


class TestMultiplicativeToBoolean:
    @settings(max_examples=60, deadline=None)
    @given(nonzero, bytes_, bytes_)
    def test_conversion_equation(self, q0, q1, r_prime):
        """B'0 xor B'1 == Q0 x Q1 (Section II-C)."""
        netlist, buses = build_m2b()
        values = drive(netlist, buses, (q0, q1, r_prime))
        b0 = read(netlist, values, "bo0")
        b1 = read(netlist, values, "bo1")
        assert b0 ^ b1 == GF256.multiply(q0, q1)

    def test_first_output_is_masked_product(self):
        netlist, buses = build_m2b()
        values = drive(netlist, buses, (0x11, 0x22, 0x33))
        assert read(netlist, values, "bo0") == GF256.multiply(0x33, 0x11)


class TestComposition:
    @settings(max_examples=40, deadline=None)
    @given(bytes_, nonzero, bytes_, st.integers(0, 2**32 - 1))
    def test_b2m_inversion_m2b_roundtrip(self, x, r, r_prime, seed):
        """The full conversion chain computes X^-1 for non-zero X.

        Mirrors Fig. 2 without the Kronecker delta: share X, convert to
        multiplicative, invert share P1 locally, convert back.
        """
        if x == 0:
            return
        rng = random.Random(seed)
        b0 = rng.randrange(256)
        b1 = b0 ^ x
        netlist, buses = build_b2m()
        values = drive(netlist, buses, (b0, b1, r))
        p0 = read(netlist, values, "p0")
        p1 = read(netlist, values, "p1")
        q0, q1 = p0, GF256.inverse(p1)
        m2b, m2b_buses = build_m2b()
        values = drive(m2b, m2b_buses, (q0, q1, r_prime))
        out = read(m2b, values, "bo0") ^ read(m2b, values, "bo1")
        assert out == GF256.inverse(x)
