"""Tests for the netlist optimization passes."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.netlist.builder import CircuitBuilder
from repro.netlist.cells import CellType
from repro.netlist.opt import (
    common_subexpression_elimination,
    constant_fold,
    dead_cell_elimination,
    eliminate_buffers,
    optimize,
)
from repro.netlist.simulate import ScalarSimulator

from tests.strategies import input_sequences, random_circuits

ALL_PASSES = (
    eliminate_buffers,
    constant_fold,
    common_subexpression_elimination,
    dead_cell_elimination,
    optimize,
)


def run_sequence(netlist, inputs, sequence):
    """Drive a netlist with scalar input vectors; returns output histories."""
    sim = ScalarSimulator(netlist)
    outputs = []
    for cycle_values in sequence:
        values = sim.step(dict(zip(inputs, cycle_values)))
        outputs.append([values[o] for o in netlist.outputs])
    return outputs


class TestBehaviourPreservation:
    @settings(deadline=None, max_examples=30)
    @given(data=st.data(), pass_index=st.integers(0, len(ALL_PASSES) - 1))
    def test_passes_preserve_output_behaviour(self, data, pass_index):
        nl, inputs, _ = data.draw(random_circuits())
        sequence = data.draw(input_sequences(len(inputs), (1, 5)))
        optimized = ALL_PASSES[pass_index](nl)
        new_inputs = [optimized.net(nl.net_name(i)) for i in inputs]
        before = run_sequence(nl, inputs, sequence)
        after = run_sequence(optimized, new_inputs, sequence)
        assert before == after


class TestBufferElimination:
    def test_buffers_removed(self):
        b = CircuitBuilder("t")
        a = b.input("a")
        net = b.buf(b.buf(b.not_(a)))
        b.output(net, "y")
        optimized = eliminate_buffers(b.build())
        kinds = [c.cell_type for c in optimized.cells]
        # the output alias buffer also disappears
        assert CellType.BUF not in kinds[:-1] or kinds.count(CellType.BUF) <= 1


class TestConstantFolding:
    def test_full_fold(self):
        b = CircuitBuilder("t")
        one = b.constant(1)
        zero = b.constant(0)
        net = b.and_(one, b.or_(zero, one))
        b.output(net, "y")
        folded = constant_fold(b.build())
        sim = ScalarSimulator(folded)
        assert sim.step({})[folded.outputs[0]] == 1

    def test_dominating_constant(self):
        b = CircuitBuilder("t")
        a = b.input("a")
        net = b.and_(a, b.constant(0))
        b.output(net, "y")
        folded = constant_fold(b.build())
        values = ScalarSimulator(folded).step({folded.net("a"): 1})
        assert values[folded.outputs[0]] == 0
        # The AND gate itself is gone.
        assert all(c.cell_type is not CellType.AND for c in folded.cells)

    def test_xor_with_one_becomes_not(self):
        b = CircuitBuilder("t")
        a = b.input("a")
        net = b.xor(a, b.constant(1))
        b.output(net, "y")
        folded = constant_fold(b.build())
        kinds = {c.cell_type for c in folded.cells}
        assert CellType.NOT in kinds
        assert CellType.XOR not in kinds


class TestCse:
    def test_duplicate_gates_merged(self):
        b = CircuitBuilder("t")
        x, y = b.input("x"), b.input("y")
        n1 = b.and_(x, y)
        n2 = b.and_(y, x)  # commutative duplicate
        b.output(b.xor(n1, n2), "out")
        merged = common_subexpression_elimination(b.build())
        ands = [c for c in merged.cells if c.cell_type is CellType.AND]
        assert len(ands) == 1

    def test_different_gates_not_merged(self):
        b = CircuitBuilder("t")
        x, y = b.input("x"), b.input("y")
        n1 = b.and_(x, y)
        n2 = b.or_(x, y)
        b.output(b.xor(n1, n2), "out")
        merged = common_subexpression_elimination(b.build())
        assert len(merged.cells) == len(b.netlist.cells)


class TestDeadCodeElimination:
    def test_unused_logic_dropped(self):
        b = CircuitBuilder("t")
        x, y = b.input("x"), b.input("y")
        live = b.xor(x, y)
        for _ in range(5):
            b.and_(x, y)  # dead
        b.output(live, "out")
        cleaned = dead_cell_elimination(b.build())
        assert len(cleaned.cells) < len(b.netlist.cells)
        assert all(c.cell_type is not CellType.AND for c in cleaned.cells)

    def test_live_register_chain_kept(self):
        b = CircuitBuilder("t")
        a = b.input("a")
        q = b.reg(b.reg(a, "q1"), "q2")
        b.output(q, "out")
        cleaned = dead_cell_elimination(b.build())
        assert sum(1 for _ in cleaned.dff_cells()) == 2


class TestOptimizePipeline:
    def test_reaches_fixed_point(self):
        b = CircuitBuilder("t")
        x = b.input("x")
        dup1 = b.and_(x, b.constant(1))
        dup2 = b.and_(x, b.constant(1))
        b.output(b.xor(dup1, dup2), "y")  # == 0
        final = optimize(b.build())
        # x AND 1 folds to x; x xor x is not folded by these passes but CSE
        # merges the two ANDs away; result is small either way.
        assert len(final.cells) <= 3
