"""Tests for the SCA substrate: power synthesis, TVLA, CPA."""

import numpy as np
import pytest

from repro.aes.sbox import sbox
from repro.aes.sbox_circuit import build_keyed_sbox, build_plain_sbox
from repro.errors import SimulationError
from repro.netlist.simulate import evaluate_combinational, pack_lanes
from repro.sca.cpa import cpa_attack
from repro.sca.power import PowerModel, TraceSynthesizer
from repro.sca.tvla import TVLA_THRESHOLD, tvla_fixed_vs_random, welch_t_test

KEY = 0x6B


@pytest.fixture(scope="module")
def keyed_sbox():
    return build_keyed_sbox()


def keyed_stimulus(netlist, plaintexts, key=KEY):
    n = len(plaintexts)
    pt_nets = [netlist.net(f"pt[{i}]") for i in range(8)]
    key_nets = [netlist.net(f"key[{i}]") for i in range(8)]

    def stimulus(cycle):
        values = {}
        for i in range(8):
            values[pt_nets[i]] = pack_lanes(
                ((plaintexts >> i) & 1).astype(np.uint8)
            )
            values[key_nets[i]] = pack_lanes(
                np.full(n, (key >> i) & 1, dtype=np.uint8)
            )
        return values

    return stimulus


class TestSboxCircuits:
    def test_plain_sbox_all_values(self):
        netlist = build_plain_sbox()
        x_nets = [netlist.net(f"x[{i}]") for i in range(8)]
        y_nets = [netlist.net(f"y[{i}]") for i in range(8)]
        for x in (0, 1, 0x53, 0xAA, 0xFF):
            values = evaluate_combinational(
                netlist, {x_nets[i]: (x >> i) & 1 for i in range(8)}
            )
            got = sum(values[y_nets[i]] << i for i in range(8))
            assert got == sbox(x)

    def test_keyed_sbox_registers(self, keyed_sbox):
        assert sum(1 for _ in keyed_sbox.dff_cells()) == 16


class TestPowerSynthesis:
    def test_trace_shape(self, keyed_sbox):
        rng = np.random.default_rng(0)
        pts = rng.integers(0, 256, size=128)
        synth = TraceSynthesizer(keyed_sbox, PowerModel.HAMMING_WEIGHT)
        traces = synth.synthesize(keyed_stimulus(keyed_sbox, pts), 128, 4)
        assert traces.shape == (128, 4)

    def test_hw_power_counts_bits(self, keyed_sbox):
        """Noise-free HW power at the settled cycle equals the known HW."""
        pts = np.array([0x00] * 64)
        synth = TraceSynthesizer(
            keyed_sbox,
            PowerModel.HAMMING_WEIGHT,
            nets=[keyed_sbox.net(f"out[{i}]") for i in range(8)],
        )
        traces = synth.synthesize(keyed_stimulus(keyed_sbox, pts), 64, 4)
        expected = bin(sbox(0x00 ^ KEY)).count("1")
        assert np.allclose(traces[:, 3], expected)

    def test_hd_power_zero_when_static(self, keyed_sbox):
        pts = np.array([0x3C] * 64)
        synth = TraceSynthesizer(keyed_sbox, PowerModel.HAMMING_DISTANCE)
        traces = synth.synthesize(keyed_stimulus(keyed_sbox, pts), 64, 6)
        # after the pipeline settles nothing toggles
        assert np.allclose(traces[:, 5], 0.0)

    def test_noise_added(self, keyed_sbox):
        pts = np.array([0x00] * 64)
        synth = TraceSynthesizer(
            keyed_sbox, PowerModel.HAMMING_WEIGHT, noise_sigma=2.0
        )
        traces = synth.synthesize(
            keyed_stimulus(keyed_sbox, pts), 64, 3, np.random.default_rng(1)
        )
        assert traces[:, 2].std() > 0.5

    def test_empty_net_selection_rejected(self, keyed_sbox):
        with pytest.raises(SimulationError):
            TraceSynthesizer(keyed_sbox, nets=[])


class TestWelch:
    def test_identical_groups_low_t(self):
        rng = np.random.default_rng(2)
        a = rng.normal(0, 1, size=(5000, 4))
        b = rng.normal(0, 1, size=(5000, 4))
        assert np.abs(welch_t_test(a, b)).max() < 4.5

    def test_mean_shift_detected(self):
        rng = np.random.default_rng(3)
        a = rng.normal(0, 1, size=(5000, 4))
        b = rng.normal(0.3, 1, size=(5000, 4))
        result = tvla_fixed_vs_random(a, b)
        assert result.leaking
        assert result.max_abs_t > TVLA_THRESHOLD

    def test_constant_columns_are_silent(self):
        a = np.ones((100, 3))
        b = np.ones((100, 3))
        assert (welch_t_test(a, b) == 0).all()

    def test_shape_validation(self):
        with pytest.raises(SimulationError):
            welch_t_test(np.ones((10, 3)), np.ones((10, 4)))
        with pytest.raises(SimulationError):
            welch_t_test(np.ones((1, 3)), np.ones((10, 3)))

    def test_summary_format(self):
        rng = np.random.default_rng(4)
        a = rng.normal(0, 1, size=(100, 2))
        b = rng.normal(0, 1, size=(100, 2))
        text = tvla_fixed_vs_random(a, b).format_summary()
        assert "max |t|" in text


class TestCpa:
    def test_recovers_key_from_unprotected_sbox(self, keyed_sbox):
        rng = np.random.default_rng(5)
        pts = rng.integers(0, 256, size=1500)
        synth = TraceSynthesizer(
            keyed_sbox, PowerModel.HAMMING_WEIGHT, noise_sigma=1.0
        )
        traces = synth.synthesize(
            keyed_stimulus(keyed_sbox, pts), 1500, 4, rng
        )
        result = cpa_attack(traces, pts, KEY)
        assert result.succeeded
        assert result.key_rank == 0
        assert result.margin > 0

    def test_fails_against_masked_sbox(self):
        from repro.core.optimizations import RandomnessScheme
        from repro.core.sbox import build_masked_sbox
        from repro.leakage.traces import random_nonzero_byte, random_words

        design = build_masked_sbox(RandomnessScheme.FULL)
        dut = design.dut
        n = 3000
        n_words = (n + 63) // 64
        rng = np.random.default_rng(6)
        pts = rng.integers(0, 256, size=n)

        def stimulus(cycle):
            values = {}
            for i in range(8):
                mask = random_words(rng, n_words)
                values[dut.share_buses[0][i]] = mask
                x_bit = pack_lanes(
                    (((pts ^ KEY) >> i) & 1).astype(np.uint8)
                )
                values[dut.share_buses[1][i]] = mask ^ x_bit
            for net in dut.mask_bits:
                values[net] = random_words(rng, n_words)
            planes = random_nonzero_byte(rng, n_words)
            for net, plane in zip(dut.nonzero_byte_buses[0], planes):
                values[net] = plane
            for net in dut.uniform_byte_buses[0]:
                values[net] = random_words(rng, n_words)
            return values

        synth = TraceSynthesizer(
            design.netlist, PowerModel.HAMMING_WEIGHT, noise_sigma=1.0
        )
        traces = synth.synthesize(stimulus, n, 8, rng)
        result = cpa_attack(traces, pts, KEY)
        assert not result.succeeded

    def test_input_validation(self):
        with pytest.raises(SimulationError):
            cpa_attack(np.ones((10, 3)), list(range(5)), 0)
        with pytest.raises(SimulationError):
            cpa_attack(np.ones((2, 3)), [1, 2], 0)

    def test_result_metadata(self, keyed_sbox):
        rng = np.random.default_rng(7)
        pts = rng.integers(0, 256, size=800)
        synth = TraceSynthesizer(keyed_sbox, PowerModel.HAMMING_WEIGHT)
        traces = synth.synthesize(keyed_stimulus(keyed_sbox, pts), 800, 4)
        result = cpa_attack(traces, pts, KEY)
        assert len(result.scores) == 256
        assert "KEY RECOVERED" in result.format_summary()
