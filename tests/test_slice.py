"""Cone-sliced simulation (:mod:`repro.netlist.slice`).

The whole feature rests on one invariant: simulating only the sequential
fan-in cone of the probed nets is **bit-identical** to simulating the full
netlist, for every net inside the cone, on every engine.  These tests pin
that invariant with random netlists and random probe subsets, pin the slice
plumbing (net-index remap, dead-net rejection, shared bounded cache), and
pin the campaign-level behaviour: sliced and unsliced campaigns accumulate
byte-identical tables, and an adaptive campaign killed and resumed across a
re-slice boundary finishes with the same tables as an uninterrupted run.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NetlistError, SimulationError
from repro.leakage.adaptive import AdaptiveConfig
from repro.leakage.campaign import CampaignConfig, EvaluationCampaign
from repro.leakage.evaluator import HistogramAccumulator, LeakageEvaluator
from repro.leakage.model import ProbingModel
from repro.leakage.traces import constant_words
from repro.netlist.builder import CircuitBuilder
from repro.netlist.cells import CellType
from repro.netlist.compile import (
    CompiledSimulator,
    clear_program_cache,
    compile_netlist,
    program_cache_info,
    set_program_cache_capacity,
)
from repro.netlist.simulate import BitslicedSimulator
from repro.netlist.slice import (
    ScheduledSimulator,
    clear_cone_memo,
    scheduled_cone,
    sequential_cone,
    slice_key,
    slice_program,
    slice_stats,
)
from repro.service.runner import build_design

from tests.strategies import random_circuits


def _pipeline():
    """Two-stage pipeline plus a side branch outside the probe's cone.

    Returns (netlist, probe_net, cone_nets, dead_net): probing ``r2``
    requires crossing two registers back to the inputs, while the OR branch
    feeds only the unprobed output.
    """
    b = CircuitBuilder("pipe")
    a = b.input("a")
    c = b.input("b")
    d = b.input("c")
    x = b.xor(a, c)
    r1 = b.reg(x, "r1")
    y = b.and_(r1, d)
    r2 = b.reg(y, "r2")
    dead = b.or_(d, c)
    b.output(dead, "dead")
    b.output(r2, "out")
    cone = {a, c, d, x, r1, y, r2}
    return b.build(), r2, cone, dead


def _random_stimulus(netlist, n_words, seed):
    rng = np.random.default_rng(seed)
    inputs = list(netlist.inputs)

    def stimulus(cycle):
        return {
            pi: rng.integers(0, 2**63, size=n_words, dtype=np.uint64)
            for pi in inputs
        }

    return stimulus


class TestSequentialCone:
    def test_crosses_registers_and_drops_side_logic(self):
        nl, probe, cone, dead = _pipeline()
        result = sequential_cone(nl, [probe])
        assert result == frozenset(cone)
        assert dead not in result

    def test_closed_under_fanin(self):
        nl, _, _, _ = _pipeline()
        cone = sequential_cone(nl, [nl.outputs[-1]])
        for net in cone:
            driver = nl.driver(net)
            if driver is not None:
                assert set(driver.inputs) <= cone

    def test_out_of_range_rejected(self):
        nl, _, _, _ = _pipeline()
        with pytest.raises(NetlistError):
            sequential_cone(nl, [nl.n_nets])
        with pytest.raises(NetlistError):
            sequential_cone(nl, [-1])

    def test_memoized(self):
        clear_cone_memo()
        nl, probe, _, _ = _pipeline()
        first = sequential_cone(nl, [probe])
        assert sequential_cone(nl, [probe]) is first

    def test_slice_key_is_cone_identity(self):
        nl, probe, cone, dead = _pipeline()
        inner = next(iter(cone - set(nl.inputs) - {probe}))
        # Adding a net already inside the cone does not change the slice.
        assert slice_key(nl, [probe]) == slice_key(nl, [probe, inner])
        assert slice_key(nl, [probe]) != slice_key(nl, [probe, dead])


class TestSliceProgram:
    def test_dead_rows_compacted_and_rejected(self):
        nl, probe, cone, dead = _pipeline()
        full = compile_netlist(nl, use_cache=False)
        sliced = slice_program(nl, [probe], use_cache=False)
        assert sliced.is_sliced and not full.is_sliced
        assert sliced.n_state_rows == len(cone) < full.n_state_rows
        assert sliced.is_live(probe) and not sliced.is_live(dead)
        with pytest.raises(SimulationError):
            sliced.state_row(dead)

    def test_stats_ratios(self):
        nl, probe, cone, dead = _pipeline()
        stats = slice_stats(nl, [probe])
        assert stats.n_cells < stats.n_cells_full
        assert stats.cell_ratio > 1.0
        payload = stats.to_dict()
        assert payload["state"] == len(cone)
        assert payload["dffs"] == 2

    def test_slice_shares_bounded_cache(self):
        clear_program_cache()
        clear_cone_memo()
        nl, probe, _, _ = _pipeline()
        first = slice_program(nl, [probe])
        assert slice_program(nl, [probe]) is first
        assert first.content_hash == slice_key(nl, [probe])
        info = program_cache_info()
        assert info.entries == 2  # full program + its slice
        assert info.hits >= 1

    @pytest.mark.parametrize("engine", [CompiledSimulator, BitslicedSimulator])
    def test_recording_outside_slice_raises(self, engine):
        nl, probe, _, dead = _pipeline()
        sim = engine(nl, 64, keep_nets=[probe])
        with pytest.raises(SimulationError):
            sim.run(_random_stimulus(nl, 1, 0), 3, record_nets=[dead])

    @pytest.mark.parametrize("engine", [CompiledSimulator, BitslicedSimulator])
    def test_trace_keeps_original_net_ids(self, engine):
        nl, probe, cone, _ = _pipeline()
        stimulus = _random_stimulus(nl, 1, 1)
        trace = engine(nl, 64, keep_nets=[probe]).run(stimulus, 4)
        stable_cone = sorted(set(nl.stable_nets()) & cone)
        assert sorted(trace.recorded_nets) == stable_cone


class TestProgramCacheBounds:
    def test_capacity_evicts_and_counts(self):
        clear_program_cache()
        previous = set_program_cache_capacity(2)
        try:
            def chain(n):
                b = CircuitBuilder("t")
                net = b.input("x")
                for _ in range(n):
                    net = b.not_(net)
                b.output(net, "out")
                return b.build()

            for n in (1, 2, 3):
                compile_netlist(chain(n))
            info = program_cache_info()
            assert info.capacity == 2
            assert info.entries == 2
            assert info.misses == 3
            assert info.evictions == 1
            compile_netlist(chain(3))
            assert program_cache_info().hits == 1
        finally:
            set_program_cache_capacity(previous)
            clear_program_cache()

    def test_shrinking_capacity_evicts_immediately(self):
        clear_program_cache()
        previous = set_program_cache_capacity(8)
        try:
            nl, probe, _, _ = _pipeline()
            compile_netlist(nl)
            slice_program(nl, [probe])
            assert program_cache_info().entries == 2
            set_program_cache_capacity(1)
            assert program_cache_info().entries == 1
        finally:
            set_program_cache_capacity(previous)
            clear_program_cache()

    def test_invalid_capacity_rejected(self):
        with pytest.raises(SimulationError):
            set_program_cache_capacity(0)


class TestSlicedBitIdentity:
    """Sliced == full, property-tested over random netlists and probes."""

    @settings(deadline=None, max_examples=100)
    @given(data=st.data())
    def test_random_netlists_random_probe_subsets(self, data):
        nl, inputs, nets = data.draw(random_circuits())
        n_probes = data.draw(st.integers(1, min(4, len(nets))))
        probes = sorted(
            set(
                data.draw(st.sampled_from(nets))
                for _ in range(n_probes)
            )
        )
        cone = sequential_cone(nl, probes)
        stimulus = _random_stimulus(nl, 2, data.draw(st.integers(0, 2**16)))
        cycles = [stimulus(c) for c in range(4)]
        replay = lambda c: cycles[c]

        full = CompiledSimulator(nl, 128).run(replay, 4, record_nets=probes)
        for engine in (CompiledSimulator, BitslicedSimulator):
            sliced = engine(nl, 128, keep_nets=probes).run(
                replay, 4, record_nets=probes
            )
            for cycle in range(4):
                for net in probes:
                    assert np.array_equal(
                        sliced.words(cycle, net), full.words(cycle, net)
                    ), (engine.__name__, cycle, nl.net_name(net))
                assert net in cone


@pytest.fixture(scope="module")
def kronecker_eq6():
    return build_design("kronecker", "eq6").dut


def _tables(acc):
    return {tid: acc.counts(tid) for tid in acc.table_ids()}


def _assert_tables_equal(a, b):
    assert a.keys() == b.keys()
    for tid in a:
        for x, y in zip(a[tid], b[tid]):
            assert np.array_equal(x, y), tid


class TestEvaluatorSliceIdentity:
    @pytest.mark.parametrize("engine", ["compiled", "bitsliced"])
    def test_accumulated_tables_identical(self, kronecker_eq6, engine):
        results = []
        for sliced in (True, False):
            ev = LeakageEvaluator(
                kronecker_eq6, ProbingModel.GLITCH, seed=11,
                engine=engine, slice_cones=sliced,
            )
            acc = HistogramAccumulator()
            ev.accumulate(acc, 0, 256, 2)
            results.append(_tables(acc))
        _assert_tables_equal(*results)

    def test_pairs_identical(self, kronecker_eq6):
        results = []
        for sliced in (True, False):
            ev = LeakageEvaluator(
                kronecker_eq6, seed=11, slice_cones=sliced
            )
            pairs = ev.select_pairs(5, 1)
            acc = HistogramAccumulator()
            ev.accumulate(
                acc, 0, 256, 1, classes=(), pairs=pairs, pair_offsets=(0, 1)
            )
            results.append(_tables(acc))
        _assert_tables_equal(*results)

    def test_empty_selection_skips_simulation(self, kronecker_eq6):
        ev = LeakageEvaluator(kronecker_eq6, seed=11, slice_cones=True)
        acc = HistogramAccumulator()
        ev.accumulate(acc, 0, 256, 1, classes=())
        assert acc.table_ids() == []

    def test_slice_info_reports_identity_and_stats(self, kronecker_eq6):
        ev = LeakageEvaluator(kronecker_eq6, seed=11)
        info = ev.slice_info()
        assert info["key"].split(":")[1] == "slice"
        assert info["stats"]["cell_ratio"] >= 1.0
        subset = ev.slice_info(class_indices=[0])
        assert subset["stats"]["cells"] <= info["stats"]["cells"]
        assert LeakageEvaluator(
            kronecker_eq6, seed=11, slice_cones=False
        ).slice_info() is None


class TestCampaignSliceIdentity:
    def _run(self, dut, sliced, hook=None, **cfg):
        ev = LeakageEvaluator(dut, seed=9, slice_cones=sliced)
        cfg.setdefault("n_simulations", 16_384)
        cfg.setdefault("chunk_size", 4_096)
        campaign = EvaluationCampaign(ev, CampaignConfig(**cfg), hook=hook)
        report = campaign.run()
        return campaign, report

    def test_sliced_campaign_bit_identical(self, kronecker_eq6):
        events = []
        sliced_c, sliced_r = self._run(
            kronecker_eq6, True, hook=lambda e, p: events.append((e, p))
        )
        full_c, full_r = self._run(kronecker_eq6, False)
        _assert_tables_equal(
            _tables(sliced_c.accumulator), _tables(full_c.accumulator)
        )
        assert sliced_r.to_dict() == full_r.to_dict()
        sliced_events = [p for e, p in events if e == "program_sliced"]
        assert len(sliced_events) == 1  # static selection: one slice only
        assert sliced_events[0]["resliced"] is False
        assert sliced_events[0]["cell_ratio"] >= 1.0

    def test_fingerprint_carries_slice_flag(self, kronecker_eq6):
        config = CampaignConfig(n_simulations=4_096)
        on = EvaluationCampaign(
            LeakageEvaluator(kronecker_eq6, slice_cones=True), config
        )
        off = EvaluationCampaign(
            LeakageEvaluator(kronecker_eq6, slice_cones=False), config
        )
        assert on.fingerprint()["slice"] is True
        assert "slice" not in off.fingerprint()

    def test_adaptive_reslices_and_resumes_across_boundary(
        self, kronecker_eq6, tmp_path
    ):
        """Kill right after the first adaptive re-slice, resume, compare."""
        checkpoint = str(tmp_path / "slice.npz")
        # Nulls decide (and are pruned) after one chunk while the strongly
        # leaking g7 probes stay undecided behind the high bar -- the union
        # support cone then shrinks to the g7 region, forcing a re-slice at
        # the second chunk boundary.
        adaptive = AdaptiveConfig(
            decide_threshold=50.0, decide_chunks=1, min_null_samples=1
        )

        def make(hook=None, should_stop=None, sliced=True):
            ev = LeakageEvaluator(kronecker_eq6, seed=9, slice_cones=sliced)
            config = CampaignConfig(
                n_simulations=16_384,
                chunk_size=2_048,
                checkpoint=checkpoint if sliced else None,
                adaptive=adaptive,
            )
            return EvaluationCampaign(
                ev, config, hook=hook, should_stop=should_stop
            )

        events = []

        def hook(event, payload):
            events.append((event, payload))

        def stop_after_reslice():
            return any(
                e == "program_sliced" and p["resliced"] for e, p in events
            )

        first = make(hook=hook, should_stop=stop_after_reslice)
        interrupted = first.run()
        reslices = [
            p for e, p in events if e == "program_sliced" and p["resliced"]
        ]
        assert reslices, "adaptive pruning never shrank the cone"
        assert interrupted.status == "truncated:cancelled"

        resumed = make().run(resume=True)
        assert resumed.status == "complete"

        # Reference: the same adaptive campaign, uninterrupted, unsliced.
        ref_campaign = make(sliced=False)
        reference = ref_campaign.run()
        final = make()
        final_report = final.run(resume=True)  # fully-done checkpoint
        _assert_tables_equal(
            _tables(final.accumulator), _tables(ref_campaign.accumulator)
        )
        assert resumed.to_dict() == reference.to_dict()
        assert final_report.status == "complete"

    def test_checkpoint_slice_mismatch_rejected(self, kronecker_eq6, tmp_path):
        from repro.errors import CheckpointError

        checkpoint = str(tmp_path / "mismatch.npz")
        sliced_campaign = EvaluationCampaign(
            LeakageEvaluator(kronecker_eq6, seed=9, slice_cones=True),
            CampaignConfig(
                n_simulations=8_192, chunk_size=4_096, checkpoint=checkpoint
            ),
        )
        sliced_campaign.run()
        unsliced = EvaluationCampaign(
            LeakageEvaluator(kronecker_eq6, seed=9, slice_cones=False),
            CampaignConfig(
                n_simulations=8_192, chunk_size=4_096, checkpoint=checkpoint
            ),
        )
        with pytest.raises(CheckpointError):
            unsliced.run(resume=True)


def _recirculating_core():
    """Tiny protocol-driven core: a state register recirculating through a
    load mux (``load ? init : state ^ fresh``), the shape that defeats the
    static sequential cone (it reaches the whole design through feedback)
    but that :func:`scheduled_cone` cuts exactly at the load cycles."""
    b = CircuitBuilder("recirc")
    load = b.input("load")
    init = b.input("init")
    fresh = b.input("fresh")
    netlist = b.netlist
    state = netlist.add_net("state")
    mixed = b.xor(state, fresh, "mixed")
    nxt = b.mux(load, mixed, init, "next")
    netlist.add_cell(CellType.DFF, (nxt,), state, "state$dff")
    out = b.xor(state, fresh, "obs")
    b.output(out, "out")
    nets = {
        "load": load, "init": init, "fresh": fresh,
        "state": state, "mixed": mixed, "next": nxt, "out": out,
    }
    return b.build(), nets


def _driven_stimulus(netlist, schedule, n_words, seed):
    """Random words on every input except the scheduled nets, which are
    driven all-lanes-constant per their declared schedule."""
    rng = np.random.default_rng(seed)
    inputs = list(netlist.inputs)

    def stimulus(cycle):
        values = {}
        for pi in inputs:
            if pi in schedule:
                values[pi] = constant_words(schedule[pi][cycle], n_words)
            else:
                values[pi] = rng.integers(
                    0, 2**63, size=n_words, dtype=np.uint64
                )
        return values

    return stimulus


class TestScheduledCone:
    def test_cuts_recirculation_at_load_cycle(self):
        nl, nets = _recirculating_core()
        schedule = {nets["load"]: [1, 0, 0, 0]}
        cones = scheduled_cone(nl, [nets["state"]], [3], 4, schedule)
        # The static cone cannot do better than the whole design.
        assert sequential_cone(nl, [nets["state"]]) >= {
            nets["init"], nets["mixed"], nets["fresh"]
        }
        # Scheduled: the load mux selects ``init`` only at cycle 0, so the
        # initial value is needed there and nowhere else -- and the
        # recirculating branch is dead at the load cycle.
        assert nets["init"] in cones[0]
        assert nets["mixed"] not in cones[0]
        # In between, the recirculating branch is live but the initial
        # value is not; at the record cycle only the register Q itself is
        # needed (its D input is needed one cycle earlier).
        for t in (1, 2):
            assert nets["init"] not in cones[t]
            assert nets["mixed"] in cones[t]
        assert cones[3] == {nets["state"]}

    def test_memoized_per_parameters(self):
        nl, nets = _recirculating_core()
        schedule = {nets["load"]: [1, 0, 0]}
        first = scheduled_cone(nl, [nets["out"]], [2], 3, schedule)
        again = scheduled_cone(nl, [nets["out"]], [2], 3, schedule)
        assert first is again
        other = scheduled_cone(
            nl, [nets["out"]], [2], 3, {nets["load"]: [1, 0, 1]}
        )
        assert other is not first

    def test_scheduled_net_must_be_primary_input(self):
        nl, nets = _recirculating_core()
        with pytest.raises(NetlistError, match="not a primary input"):
            scheduled_cone(
                nl, [nets["out"]], [1], 2, {nets["mixed"]: [0, 0]}
            )

    def test_short_schedule_rejected(self):
        nl, nets = _recirculating_core()
        with pytest.raises(NetlistError, match="covers 2 cycles"):
            scheduled_cone(
                nl, [nets["out"]], [3], 4, {nets["load"]: [1, 0]}
            )

    def test_non_bit_schedule_rejected(self):
        nl, nets = _recirculating_core()
        with pytest.raises(NetlistError, match="non-bit"):
            scheduled_cone(
                nl, [nets["out"]], [1], 2, {nets["load"]: [1, 2]}
            )

    def test_record_cycles_must_be_in_range(self):
        nl, nets = _recirculating_core()
        with pytest.raises(NetlistError, match="outside"):
            scheduled_cone(nl, [nets["out"]], [4], 4, {})
        with pytest.raises(NetlistError, match="positive"):
            scheduled_cone(nl, [nets["out"]], [0], 0, {})


class TestScheduledSimulator:
    N_CYCLES = 6
    LOAD = (1, 0, 0, 0, 1, 0)

    def _build(self, n_lanes=130, seed=3):
        nl, nets = _recirculating_core()
        schedule = {nets["load"]: list(self.LOAD)}
        roots = [nets["state"], nets["out"]]
        record = [2, 3, 5]
        simulator = ScheduledSimulator(
            nl, n_lanes, roots, record, self.N_CYCLES, schedule
        )
        n_words = simulator.n_words
        stimulus = _driven_stimulus(nl, schedule, n_words, seed)
        return nl, nets, schedule, roots, record, simulator, stimulus

    def test_bit_identical_to_full_simulation(self):
        nl, nets, schedule, roots, record, simulator, stimulus = (
            self._build()
        )
        replay = [stimulus(c) for c in range(self.N_CYCLES)]
        sliced = simulator.run(lambda c: replay[c])
        full = BitslicedSimulator(nl, 130).run(
            lambda c: replay[c], self.N_CYCLES, record_nets=roots
        )
        for t in record:
            for net in roots:
                assert np.array_equal(
                    sliced.words(t, net), full.words(t, net)
                ), (t, nl.net_name(net))

    def test_run_is_stateless_across_streams(self):
        nl, nets, schedule, roots, record, simulator, _ = self._build()
        for seed in (11, 12):
            stimulus = _driven_stimulus(nl, schedule, simulator.n_words, seed)
            replay = [stimulus(c) for c in range(self.N_CYCLES)]
            sliced = simulator.run(lambda c: replay[c])
            full = BitslicedSimulator(nl, 130).run(
                lambda c: replay[c], self.N_CYCLES, record_nets=roots
            )
            for t in record:
                for net in roots:
                    assert np.array_equal(
                        sliced.words(t, net), full.words(t, net)
                    )

    def test_wrong_schedule_value_raises(self):
        nl, nets, schedule, *_, simulator, stimulus = self._build()
        lying = {nets["load"]: [0] * self.N_CYCLES}
        bad = _driven_stimulus(nl, lying, simulator.n_words, 3)
        with pytest.raises(
            SimulationError, match="does not match its declared value"
        ):
            simulator.run(bad)

    def test_missing_input_raises(self):
        nl, nets, schedule, *_, simulator, stimulus = self._build()

        def broken(cycle):
            values = stimulus(cycle)
            values.pop(nets["fresh"], None)
            return values

        with pytest.raises(SimulationError, match="missing primary input"):
            simulator.run(broken)

    def test_record_net_must_be_a_root(self):
        nl, nets, *_ , simulator, stimulus = self._build()
        with pytest.raises(SimulationError, match="not a root"):
            simulator.run(stimulus, record_nets=[nets["mixed"]])

    def test_stats_report_savings(self):
        *_, simulator, _ = self._build()
        stats = simulator.stats()
        assert stats["cell_cycles"] < stats["cell_cycles_full"]
        assert stats["cell_cycle_ratio"] > 1.0
        assert stats["n_cycles"] == self.N_CYCLES
        assert stats["record_cycles"] == 3


class TestScheduledBitIdentity:
    """Scheduled slicing == full, over random netlists and schedules."""

    @settings(deadline=None, max_examples=100)
    @given(data=st.data())
    def test_random_netlists_random_schedules(self, data):
        nl, inputs, nets = data.draw(random_circuits())
        n_cycles = data.draw(st.integers(1, 5))
        scheduled_net = data.draw(st.sampled_from(inputs))
        schedule = {
            scheduled_net: [
                data.draw(st.integers(0, 1)) for _ in range(n_cycles)
            ]
        }
        n_probes = data.draw(st.integers(1, min(4, len(nets))))
        probes = sorted(
            set(
                data.draw(st.sampled_from(nets))
                for _ in range(n_probes)
            )
        )
        record = sorted(
            set(
                data.draw(st.integers(0, n_cycles - 1))
                for _ in range(data.draw(st.integers(1, n_cycles)))
            )
        )
        stimulus = _driven_stimulus(
            nl, schedule, 2, data.draw(st.integers(0, 2**16))
        )
        replay = [stimulus(c) for c in range(n_cycles)]
        sliced = ScheduledSimulator(
            nl, 128, probes, record, n_cycles, schedule
        ).run(lambda c: replay[c])
        full = BitslicedSimulator(nl, 128).run(
            lambda c: replay[c], n_cycles, record_nets=probes
        )
        for t in record:
            for net in probes:
                assert np.array_equal(
                    sliced.words(t, net), full.words(t, net)
                ), (t, nl.net_name(net))
