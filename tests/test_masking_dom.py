"""Tests for the DOM-AND gadget generator."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MaskingError
from repro.masking.dom import (
    dom_and,
    dom_and_first_order,
    dom_and_mask_count,
    dom_masks_from_bus,
)
from repro.masking.randomness import MaskBus
from repro.netlist.builder import CircuitBuilder
from repro.netlist.simulate import ScalarSimulator


def build_gadget(n_shares, register_inner=True):
    builder = CircuitBuilder("dom")
    x = [builder.input(f"x{i}") for i in range(n_shares)]
    y = [builder.input(f"y{i}") for i in range(n_shares)]
    bus = MaskBus(builder)
    masks = dom_masks_from_bus(bus, "g", n_shares)
    z = dom_and(builder, x, y, masks, "g", register_inner=register_inner)
    outs = builder.output_bus(z, "z")
    return builder.build(), x, y, bus.fresh_input_nets, outs


def run_gadget(netlist, x_nets, y_nets, mask_nets, out_nets, x, y, rng):
    """Drive constant shares of x and y until the pipeline settles."""
    n_shares = len(x_nets)
    sim = ScalarSimulator(netlist)

    def share_bit(value):
        shares = [rng.randrange(2) for _ in range(n_shares - 1)]
        acc = 0
        for s in shares:
            acc ^= s
        shares.append(value ^ acc)
        return shares

    x_shares = share_bit(x)
    y_shares = share_bit(y)
    values = None
    for _ in range(3):
        assignment = {}
        for i in range(n_shares):
            assignment[x_nets[i]] = x_shares[i]
            assignment[y_nets[i]] = y_shares[i]
        for net in mask_nets:
            assignment[net] = rng.randrange(2)
        values = sim.step(assignment)
    result = 0
    for net in out_nets:
        result ^= values[net]
    return result


class TestMaskCount:
    def test_counts(self):
        assert dom_and_mask_count(2) == 1
        assert dom_and_mask_count(3) == 3
        assert dom_and_mask_count(4) == 6


class TestFunctional:
    @pytest.mark.parametrize("n_shares", [2, 3, 4])
    @pytest.mark.parametrize("x,y", [(0, 0), (0, 1), (1, 0), (1, 1)])
    def test_computes_and(self, n_shares, x, y):
        netlist, xs, ys, masks, outs = build_gadget(n_shares)
        rng = random.Random(n_shares * 10 + x * 2 + y)
        for trial in range(8):
            assert run_gadget(netlist, xs, ys, masks, outs, x, y, rng) == (
                x & y
            )

    def test_unregistered_inner_variant(self):
        netlist, xs, ys, masks, outs = build_gadget(2, register_inner=False)
        rng = random.Random(0)
        for x, y in [(0, 0), (1, 1), (1, 0)]:
            assert run_gadget(netlist, xs, ys, masks, outs, x, y, rng) == (
                x & y
            )

    def test_first_order_wrapper(self):
        builder = CircuitBuilder("dom1")
        x = [builder.input("x0"), builder.input("x1")]
        y = [builder.input("y0"), builder.input("y1")]
        r = builder.input("r")
        z = dom_and_first_order(builder, x, y, r, "g")
        assert len(z) == 2


class TestStructure:
    def test_register_count_first_order(self):
        netlist, *_ = build_gadget(2)
        # 2 inner + 2 cross registers.
        assert sum(1 for _ in netlist.dff_cells()) == 4

    def test_register_count_second_order(self):
        netlist, *_ = build_gadget(3)
        # 3 inner + 6 cross registers.
        assert sum(1 for _ in netlist.dff_cells()) == 9

    def test_unregistered_inner_has_fewer_registers(self):
        netlist, *_ = build_gadget(2, register_inner=False)
        assert sum(1 for _ in netlist.dff_cells()) == 2

    def test_share_count_mismatch_rejected(self):
        builder = CircuitBuilder("bad")
        x = [builder.input("x0"), builder.input("x1")]
        y = [builder.input("y0")]
        with pytest.raises(MaskingError):
            dom_and(builder, x, y, {(0, 1): 0}, "g")

    def test_wrong_mask_keys_rejected(self):
        builder = CircuitBuilder("bad")
        x = [builder.input("x0"), builder.input("x1")]
        y = [builder.input("y0"), builder.input("y1")]
        r = builder.input("r")
        with pytest.raises(MaskingError):
            dom_and(builder, x, y, {(1, 0): r}, "g")

    def test_single_share_rejected(self):
        builder = CircuitBuilder("bad")
        with pytest.raises(MaskingError):
            dom_and(builder, [builder.input("x")], [builder.input("y")], {}, "g")
