"""Tests for the combinational GF(2^8) multiplier and inverter circuits."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NetlistError
from repro.gf.gf256 import GF256
from repro.aes.gf_circuits import (
    build_gf256_inverter,
    build_gf256_multiplier,
    gf256_inverter_circuit,
    gf256_multiplier_circuit,
)
from repro.netlist.builder import CircuitBuilder
from repro.netlist.simulate import evaluate_combinational
from repro.netlist.stats import netlist_stats

MUL = build_gf256_multiplier()
INV = build_gf256_inverter()

_MUL_A = [MUL.net(f"a[{i}]") for i in range(8)]
_MUL_B = [MUL.net(f"b[{i}]") for i in range(8)]
_MUL_P = [MUL.net(f"p[{i}]") for i in range(8)]
_INV_A = [INV.net(f"a[{i}]") for i in range(8)]
_INV_Y = [INV.net(f"y[{i}]") for i in range(8)]

bytes_ = st.integers(0, 255)


def run_multiplier(a, b):
    assignment = {_MUL_A[i]: (a >> i) & 1 for i in range(8)}
    assignment.update({_MUL_B[i]: (b >> i) & 1 for i in range(8)})
    values = evaluate_combinational(MUL, assignment)
    return sum(values[_MUL_P[i]] << i for i in range(8))


def run_inverter(a):
    assignment = {_INV_A[i]: (a >> i) & 1 for i in range(8)}
    values = evaluate_combinational(INV, assignment)
    return sum(values[_INV_Y[i]] << i for i in range(8))


class TestMultiplier:
    @settings(max_examples=150, deadline=None)
    @given(bytes_, bytes_)
    def test_matches_table_field(self, a, b):
        assert run_multiplier(a, b) == GF256.multiply(a, b)

    def test_identity_and_zero(self):
        for a in (0, 1, 0x53, 0xFF):
            assert run_multiplier(a, 1) == a
            assert run_multiplier(a, 0) == 0

    def test_fips_example(self):
        assert run_multiplier(0x57, 0x83) == 0xC1

    def test_gate_budget(self):
        stats = netlist_stats(MUL)
        # 64 partial products + XOR network; no registers.
        assert stats.n_registers == 0
        assert stats.cell_counts[list(stats.cell_counts)[0]] >= 0
        assert 120 <= stats.n_cells <= 260

    def test_width_checked(self):
        b = CircuitBuilder("bad")
        x = b.input_bus("x", 4)
        y = b.input_bus("y", 8)
        with pytest.raises(NetlistError):
            gf256_multiplier_circuit(b, x, y, "m")


class TestInverter:
    def test_all_values_exhaustive(self):
        for a in range(256):
            assert run_inverter(a) == GF256.inverse_or_zero(a)

    def test_zero_and_one_self_inverse(self):
        assert run_inverter(0) == 0
        assert run_inverter(1) == 1

    def test_purely_combinational(self):
        assert netlist_stats(INV).n_registers == 0

    def test_width_checked(self):
        b = CircuitBuilder("bad")
        x = b.input_bus("x", 4)
        with pytest.raises(NetlistError):
            gf256_inverter_circuit(b, x, "inv")


class TestComposition:
    @settings(max_examples=40, deadline=None)
    @given(bytes_)
    def test_multiplier_inverter_chain(self, a):
        """a x a^-1 == 1 through the circuits, for non-zero a."""
        if a == 0:
            return
        builder = CircuitBuilder("chain")
        bus = builder.input_bus("a", 8)
        inverse = gf256_inverter_circuit(builder, bus, "inv")
        product = gf256_multiplier_circuit(builder, bus, inverse, "mul")
        builder.output_bus(product, "p")
        nl = builder.build()
        assignment = {bus[i]: (a >> i) & 1 for i in range(8)}
        values = evaluate_combinational(nl, assignment)
        got = sum(values[nl.net(f"p[{i}]")] << i for i in range(8))
        assert got == 1
