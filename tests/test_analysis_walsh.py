"""Tests for exact bias/distribution computation."""

import pytest

from repro.analysis.anf import BitPoly
from repro.analysis.walsh import (
    bias,
    depends_on_conditioning,
    distributions_by_assignment,
    joint_distribution,
    total_variation,
)
from repro.errors import ReproError


def var(name):
    return BitPoly.var(name)


class TestBias:
    def test_uniform_variable(self):
        assert bias(var("a")) == 0.5

    def test_and_bias(self):
        assert bias(var("a") & var("b")) == 0.25

    def test_xor_of_independent_is_balanced(self):
        assert bias(var("a") ^ var("b")) == 0.5

    def test_constant_bias(self):
        assert bias(BitPoly.one()) == 1.0
        assert bias(BitPoly.zero()) == 0.0

    def test_conditioning(self):
        p = var("a") & var("b")
        assert bias(p, {"a": 1}) == 0.5
        assert bias(p, {"a": 0}) == 0.0

    def test_too_many_variables_rejected(self):
        wide = BitPoly.zero()
        for i in range(30):
            wide = wide ^ var(f"v{i}")
        with pytest.raises(ReproError):
            bias(wide)


class TestJointDistribution:
    def test_masked_value_is_uniform(self):
        """x ^ r with fresh r is uniform: the essence of masking."""
        dist = joint_distribution([var("x") ^ var("r")], {"x": 1})
        assert dist == {(0,): 0.5, (1,): 0.5}

    def test_correlated_pair(self):
        # (r, r) is perfectly correlated.
        dist = joint_distribution([var("r"), var("r")])
        assert dist == {(0, 0): 0.5, (1, 1): 0.5}

    def test_probabilities_sum_to_one(self):
        polys = [var("a") & var("b"), var("b") ^ var("c")]
        dist = joint_distribution(polys)
        assert abs(sum(dist.values()) - 1.0) < 1e-12


class TestConditionedDistributions:
    def test_unmasked_dependency_detected(self):
        """(x & s) with observed s: distribution depends on x."""
        observation = [var("x") & var("s"), var("s")]
        dists = distributions_by_assignment(observation, ["x"])
        assert depends_on_conditioning(dists)

    def test_masked_observation_independent(self):
        observation = [var("x") ^ var("r")]
        dists = distributions_by_assignment(observation, ["x"])
        assert not depends_on_conditioning(dists)

    def test_eq8_toy_model(self):
        """The paper's Eq. (8) in miniature.

        With r1 = r3, the pair (x0*X1 ^ r, x4*X5 ^ r) has an X-dependent
        joint distribution: when X1 = X5 = 0 both components are equal.
        """
        r = var("r")
        obs = [
            (var("x0") & var("X1")) ^ r,
            (var("x4") & var("X5")) ^ r,
        ]
        dists = distributions_by_assignment(obs, ["X1", "X5"])
        assert depends_on_conditioning(dists)
        equal_case = dists[(0, 0)]
        assert equal_case == {(0, 0): 0.5, (1, 1): 0.5}

    def test_eq8_toy_model_fresh_masks_secure(self):
        obs = [
            (var("x0") & var("X1")) ^ var("r1"),
            (var("x4") & var("X5")) ^ var("r3"),
        ]
        dists = distributions_by_assignment(obs, ["X1", "X5"])
        assert not depends_on_conditioning(dists)


class TestTotalVariation:
    def test_identical_distributions(self):
        d = {(0,): 0.5, (1,): 0.5}
        assert total_variation(d, dict(d)) == 0.0

    def test_disjoint_distributions(self):
        assert total_variation({(0,): 1.0}, {(1,): 1.0}) == 1.0

    def test_partial_overlap(self):
        p = {(0,): 0.75, (1,): 0.25}
        q = {(0,): 0.25, (1,): 0.75}
        assert abs(total_variation(p, q) - 0.5) < 1e-12
