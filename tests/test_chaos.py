"""Tests for the deterministic chaos harness and the resilience machinery.

Covers the policy spec (round-trip, validation, per-site determinism, the
fault budget), ``retry_io`` backoff, the checkpoint integrity container
and its generation fallback, engine degradation, the worker-kill/hang
degradation ladder of the parallel executor, and a miniature chaos-torture
sweep asserting the byte-identical-or-typed-error contract end to end.
"""

import random

import pytest

from repro.chaos import (
    CHAOS_SITES,
    ChaosPolicy,
    FaultPlane,
    InjectedFault,
    RetryPolicy,
    retry_io,
    run_torture,
)
from repro.errors import ChaosError, CheckpointError
from repro.leakage.campaign import (
    CampaignConfig,
    EvaluationCampaign,
    CheckpointCorrupt,
    pack_checkpoint,
    unpack_checkpoint,
)
from repro.leakage.evaluator import HistogramAccumulator, LeakageEvaluator
from repro.leakage.model import ProbingModel
from repro.leakage.parallel import ParallelExecutor

N_SIMS = 8_000


def _evaluator(design, seed=7, engine="compiled"):
    return LeakageEvaluator(
        design.dut, ProbingModel.GLITCH, seed=seed, engine=engine
    )


def _assert_identical(report_a, report_b):
    assert len(report_a.results) == len(report_b.results)
    for a, b in zip(report_a.results, report_b.results):
        assert a.probe_names == b.probe_names
        assert a.g_statistic == b.g_statistic
        assert a.dof == b.dof
        assert a.mlog10p == b.mlog10p


class ScriptedPlane(FaultPlane):
    """Always injects ``kind`` at ``site`` (picklable, for worker tests)."""

    def __init__(self, site, kind, hang_seconds=0.0):
        self.site = site
        self.kind = kind
        self.hang_seconds = hang_seconds

    def decide(self, site):
        return self.kind if site == self.site else None


class TestChaosPolicy:
    def test_round_trips_through_dict(self):
        policy = ChaosPolicy(
            seed=5, p=0.25, sites=("store.write",), max_faults=7
        )
        assert ChaosPolicy.from_dict(policy.to_dict()) == policy

    def test_rejects_unknown_fields_and_sites(self):
        with pytest.raises(ChaosError):
            ChaosPolicy.from_dict({"seed": 1, "chaos": True})
        with pytest.raises(ChaosError):
            ChaosPolicy(sites=("no.such.site",)).validate()

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ChaosError):
            ChaosPolicy(p=1.5).validate()
        with pytest.raises(ChaosError):
            ChaosPolicy(max_faults=-1).validate()
        with pytest.raises(ChaosError):
            ChaosPolicy(hang_seconds=-0.1).validate()

    def test_same_seed_reproduces_the_schedule(self):
        policy = ChaosPolicy(seed=11, p=0.5, max_faults=None)
        decisions_a = [
            policy.fault_plane().decide("checkpoint.write")
            for _ in range(1)
        ]
        plane_a, plane_b = policy.fault_plane(), policy.fault_plane()
        schedule_a = [plane_a.decide("checkpoint.write") for _ in range(64)]
        schedule_b = [plane_b.decide("checkpoint.write") for _ in range(64)]
        assert schedule_a == schedule_b
        assert any(kind is not None for kind in schedule_a)
        assert decisions_a[0] == schedule_a[0]

    def test_sites_draw_from_independent_streams(self):
        policy = ChaosPolicy(seed=3, p=0.5, max_faults=None)
        mixed = policy.fault_plane()
        for _ in range(32):
            mixed.decide("store.write")
        mixed_reads = [mixed.decide("checkpoint.read") for _ in range(32)]
        solo = policy.fault_plane()
        solo_reads = [solo.decide("checkpoint.read") for _ in range(32)]
        assert mixed_reads == solo_reads

    def test_disabled_site_never_fires(self):
        plane = ChaosPolicy(
            seed=0, p=1.0, sites=("checkpoint.write",)
        ).fault_plane()
        assert all(
            plane.decide("store.write") is None for _ in range(16)
        )

    def test_max_faults_budget_caps_injections(self):
        plane = ChaosPolicy(
            seed=0, p=1.0, sites=("telemetry.write",), max_faults=3
        ).fault_plane()
        kinds = [plane.decide("telemetry.write") for _ in range(10)]
        assert sum(kind is not None for kind in kinds) == 3
        assert len(plane.injected) == 3

    def test_injected_io_faults_are_oserrors(self):
        plane = ChaosPolicy(
            seed=0, p=1.0, sites=("telemetry.write",), max_faults=None
        ).fault_plane()
        with pytest.raises(InjectedFault) as info:
            plane.maybe_fail("telemetry.write")
        assert isinstance(info.value, OSError)
        assert info.value.site == "telemetry.write"


class TestRetryIO:
    def test_retries_transient_oserrors(self):
        calls = {"n": 0}
        sleeps = []

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return "ok"

        events = []
        result = retry_io(
            flaky,
            RetryPolicy(attempts=4, base_delay=0.01, max_delay=0.1),
            site="store.write",
            sleep=sleeps.append,
            rng=random.Random(0),
            hook=lambda event, payload: events.append((event, payload)),
        )
        assert result == "ok"
        assert calls["n"] == 3
        assert len(sleeps) == 2
        assert all(0 <= delay <= 0.1 for delay in sleeps)
        assert [event for event, _ in events] == ["io_retry", "io_retry"]
        assert events[0][1]["site"] == "store.write"

    def test_exhausted_attempts_reraise_the_last_error(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise OSError("permanent")

        with pytest.raises(OSError, match="permanent"):
            retry_io(
                broken,
                RetryPolicy(attempts=3, base_delay=0.0),
                sleep=lambda _: None,
            )
        assert calls["n"] == 3

    def test_non_retryable_errors_propagate_immediately(self):
        calls = {"n": 0}

        def wrong():
            calls["n"] += 1
            raise ValueError("not IO")

        with pytest.raises(ValueError):
            retry_io(wrong, sleep=lambda _: None)
        assert calls["n"] == 1


class TestCheckpointContainer:
    def test_round_trip(self):
        payload = b"PK\x03\x04 pretend this is an NPZ payload"
        assert unpack_checkpoint(pack_checkpoint(payload)) == payload

    def test_legacy_bare_npz_passes_through(self):
        legacy = b"PK\x03\x04 a pre-container checkpoint"
        assert unpack_checkpoint(legacy) == legacy

    def test_bad_magic_is_corrupt(self):
        with pytest.raises(CheckpointCorrupt):
            unpack_checkpoint(b"garbage that is not a checkpoint")

    def test_torn_payload_is_corrupt(self):
        blob = pack_checkpoint(b"0123456789" * 10)
        with pytest.raises(CheckpointCorrupt, match="torn"):
            unpack_checkpoint(blob[:-7])

    def test_flipped_bit_is_corrupt(self):
        blob = bytearray(pack_checkpoint(b"0123456789" * 10))
        blob[-1] ^= 0x10
        with pytest.raises(CheckpointCorrupt, match="CRC32"):
            unpack_checkpoint(bytes(blob))

    def test_corrupt_is_a_checkpoint_error(self):
        # Quarantine-or-raise call sites catch the subclass; everything
        # else keeps treating it as the existing typed error.
        assert issubclass(CheckpointCorrupt, CheckpointError)


class TestGenerationFallback:
    def test_both_generations_corrupt_starts_fresh(
        self, kronecker_eq6, tmp_path
    ):
        path = str(tmp_path / "ck.npz")
        with open(path, "wb") as handle:
            handle.write(b"RPCKPT01 torn current generation")
        with open(path + ".prev", "wb") as handle:
            handle.write(b"rotten previous generation")
        events = []
        campaign = EvaluationCampaign(
            _evaluator(kronecker_eq6),
            CampaignConfig(
                n_simulations=N_SIMS, chunk_size=2_048, checkpoint=path
            ),
            hook=lambda event, payload: events.append(event),
        )
        report = campaign.run(resume=True)
        assert report.status == "complete"
        assert campaign.progress.resumed_from_block == 0
        names = set(events)
        assert "checkpoint_corrupt" in names
        assert "checkpoint_fallback" in names
        import os

        assert os.path.exists(path + ".corrupt")
        assert os.path.exists(path + ".prev.corrupt")
        _assert_identical(
            _evaluator(kronecker_eq6).evaluate(n_simulations=N_SIMS), report
        )


class TestEngineDegradation:
    def test_compiled_failure_degrades_to_bitsliced(self, kronecker_eq6):
        evaluator = _evaluator(kronecker_eq6, engine="compiled")
        evaluator.fault_plane = ScriptedPlane("engine.compile", "fail")
        with pytest.warns(RuntimeWarning, match="bitsliced"):
            report = evaluator.evaluate(n_simulations=N_SIMS)
        assert evaluator.engine == "bitsliced"
        assert any(
            entry["kind"] == "engine_bitsliced"
            for entry in evaluator.degradations
        )
        reference = _evaluator(kronecker_eq6, engine="bitsliced").evaluate(
            n_simulations=N_SIMS
        )
        _assert_identical(reference, report)


class TestWorkerDegradationLadder:
    #: four full sampling blocks, so two workers get two shards each.
    LADDER_SIMS = 16_384

    def _accumulate(self, evaluator, executor, blocks):
        acc = HistogramAccumulator()
        executor.accumulate(
            acc, 0, evaluator.n_lanes_for(self.LADDER_SIMS, 1), 1,
            blocks=blocks,
        )
        return acc

    def _reference(self, design, blocks):
        evaluator = _evaluator(design)
        acc = HistogramAccumulator()
        evaluator.accumulate(
            acc, 0, evaluator.n_lanes_for(self.LADDER_SIMS, 1), 1,
            blocks=blocks,
        )
        return acc

    def _assert_tables_equal(self, acc_a, acc_b):
        import numpy as np

        assert sorted(acc_a.table_ids()) == sorted(acc_b.table_ids())
        for table_id in acc_a.table_ids():
            for got, want in zip(
                acc_a.counts(table_id), acc_b.counts(table_id)
            ):
                assert np.array_equal(got, want)

    def test_killed_workers_restart_then_degrade_serial(self, kronecker_eq6):
        evaluator = _evaluator(kronecker_eq6)
        evaluator.fault_plane = ScriptedPlane("worker.block", "kill")
        events = []
        blocks = list(range(4))
        with pytest.warns(RuntimeWarning, match="in-process"):
            with ParallelExecutor(
                evaluator,
                2,
                hook=lambda event, payload: events.append(event),
            ) as executor:
                acc = self._accumulate(evaluator, executor, blocks)
        assert "pool_restart" in events
        assert "serial_fallback" in events
        self._assert_tables_equal(
            acc, self._reference(kronecker_eq6, blocks)
        )

    def test_hung_workers_are_reaped(self, kronecker_eq6):
        evaluator = _evaluator(kronecker_eq6)
        evaluator.fault_plane = ScriptedPlane(
            "worker.block", "hang", hang_seconds=60.0
        )
        events = []
        blocks = list(range(4))
        with pytest.warns(RuntimeWarning, match="in-process"):
            with ParallelExecutor(
                evaluator,
                2,
                hook=lambda event, payload: events.append(event),
                shard_timeout=0.5,
                max_pool_restarts=0,
            ) as executor:
                acc = self._accumulate(evaluator, executor, blocks)
        assert "worker_stalled" in events
        assert "serial_fallback" in events
        self._assert_tables_equal(
            acc, self._reference(kronecker_eq6, blocks)
        )


class TestTortureHarness:
    def test_mini_torture_honours_the_contract(self, kronecker_eq6, tmp_path):
        def make_evaluator():
            return _evaluator(kronecker_eq6)

        def make_config(checkpoint=None):
            return CampaignConfig(
                n_simulations=N_SIMS, chunk_size=1_024, checkpoint=checkpoint
            )

        report = run_torture(
            make_evaluator,
            make_config,
            seeds=range(4),
            workdir=str(tmp_path),
            p=0.4,
            sites=tuple(
                site for site in CHAOS_SITES if site != "worker.block"
            ),
        )
        assert report.ok, report.format_summary()
        assert report.golden_status == "complete"
        assert len(report.runs) == 4
        # chaos actually fired: at least one run saw an injection.
        assert any(run.injected for run in report.runs)
        summary = report.format_summary()
        assert "chaos torture" in summary
        parsed = report.to_dict()
        assert parsed["ok"] is True
        assert sum(parsed["counts"].values()) == 4
