"""Tests for the G-test statistics."""

import numpy as np
import pytest

from repro.leakage.gtest import DEFAULT_THRESHOLD, MLOG10P_CAP, g_test


class TestNullBehaviour:
    def test_identical_distributions_not_flagged(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 16, size=50_000).astype(np.uint64)
        b = rng.integers(0, 16, size=50_000).astype(np.uint64)
        result = g_test(a, b)
        assert not result.is_leaking()
        assert result.mlog10p < 4.0

    def test_null_uniformity_over_many_runs(self):
        """Under the null, -log10(p) rarely exceeds 2 in 20 runs."""
        rng = np.random.default_rng(1)
        exceed = 0
        for _ in range(20):
            a = rng.integers(0, 8, size=5_000).astype(np.uint64)
            b = rng.integers(0, 8, size=5_000).astype(np.uint64)
            if g_test(a, b).mlog10p > 2.0:
                exceed += 1
        assert exceed <= 4

    def test_empty_input(self):
        result = g_test(np.array([], dtype=np.uint64), np.array([1], dtype=np.uint64))
        assert result.mlog10p == 0.0
        assert result.dof == 0

    def test_single_category(self):
        a = np.zeros(1000, dtype=np.uint64)
        b = np.zeros(1000, dtype=np.uint64)
        result = g_test(a, b)
        assert result.dof == 0
        assert result.mlog10p == 0.0


class TestDetection:
    def test_strong_bias_detected(self):
        rng = np.random.default_rng(2)
        a = rng.integers(0, 2, size=20_000).astype(np.uint64)
        b = (rng.random(20_000) < 0.6).astype(np.uint64)
        result = g_test(a, b)
        assert result.is_leaking()
        assert result.mlog10p > DEFAULT_THRESHOLD

    def test_detection_strengthens_with_samples(self):
        rng = np.random.default_rng(3)
        scores = []
        for n in (2_000, 20_000, 200_000):
            a = rng.integers(0, 2, size=n).astype(np.uint64)
            b = (rng.random(n) < 0.55).astype(np.uint64)
            scores.append(g_test(a, b).mlog10p)
        assert scores[0] < scores[1] < scores[2]

    def test_deterministic_difference_capped(self):
        a = np.zeros(100_000, dtype=np.uint64)
        b = np.ones(100_000, dtype=np.uint64)
        result = g_test(a, b)
        assert result.mlog10p <= MLOG10P_CAP
        assert result.mlog10p > 1000

    def test_custom_threshold(self):
        rng = np.random.default_rng(4)
        a = rng.integers(0, 2, size=5_000).astype(np.uint64)
        b = (rng.random(5_000) < 0.53).astype(np.uint64)
        result = g_test(a, b)
        assert result.is_leaking(threshold=0.5) or result.mlog10p <= 0.5


class TestPooling:
    def test_rare_categories_pooled(self):
        rng = np.random.default_rng(5)
        # 1000 samples over 500 categories: nearly everything is rare.
        a = rng.integers(0, 500, size=1_000).astype(np.uint64)
        b = rng.integers(0, 500, size=1_000).astype(np.uint64)
        result = g_test(a, b)
        # After pooling the table must be tiny and the test quiet.
        assert result.n_categories < 50
        assert not result.is_leaking()

    def test_dof_matches_categories(self):
        a = np.array([0] * 500 + [1] * 500, dtype=np.uint64)
        b = np.array([0] * 400 + [1] * 600, dtype=np.uint64)
        result = g_test(a, b)
        assert result.dof == result.n_categories - 1 == 1

    def test_counts_recorded(self):
        a = np.zeros(10, dtype=np.uint64)
        b = np.zeros(20, dtype=np.uint64)
        result = g_test(a, b)
        assert result.n_fixed == 10
        assert result.n_random == 20
