"""Tests for levelization, cones and probe supports."""

import pytest
from hypothesis import given

from repro.errors import NetlistError
from repro.netlist.builder import CircuitBuilder
from repro.netlist.core import Netlist
from repro.netlist.cells import CellType
from repro.netlist.topo import (
    all_stable_supports,
    combinational_cone,
    combinational_depth,
    levelize,
    stable_support,
    transitive_input_support,
)

from tests.strategies import random_circuits


def pipeline_example():
    """in -> NOT -> DFF -> AND(in2) -> DFF -> out, plus a side XOR."""
    b = CircuitBuilder("p")
    a = b.input("a")
    c = b.input("c")
    inv = b.not_(a, "inv")
    q1 = b.reg(inv, "q1")
    g = b.and_(q1, c, "g")
    q2 = b.reg(g, "q2")
    x = b.xor(q2, a, "x")
    b.output(x, "out")
    return b.build()


class TestLevelize:
    def test_order_respects_dependencies(self):
        nl = pipeline_example()
        order = levelize(nl)
        position = {cell.output: i for i, cell in enumerate(order)}
        for cell in order:
            for inp in cell.inputs:
                driver = nl.driver(inp)
                if driver is not None and not driver.cell_type.is_sequential:
                    assert position[inp] < position[cell.output]

    def test_loop_detected(self):
        nl = Netlist("loop")
        a = nl.add_net("a")
        b = nl.add_net("b")
        nl.add_cell(CellType.NOT, (b,), a, "n0")
        nl.add_cell(CellType.NOT, (a,), b, "n1")
        with pytest.raises(NetlistError):
            levelize(nl)

    def test_register_feedback_is_fine(self):
        b = CircuitBuilder("fb")
        a = b.input("a")
        # q feeds back through a register: legal sequential loop.
        nl = b.netlist
        q_net = nl.add_net("q")
        x = b.xor(a, q_net, "x")
        nl.add_cell(CellType.DFF, (x,), q_net, "qreg")
        b.output(q_net)
        order = levelize(nl)
        assert len(order) == 1  # only the XOR

    @given(random_circuits())
    def test_levelize_covers_all_comb_cells(self, circuit):
        nl, _, _ = circuit
        order = levelize(nl)
        assert len(order) == sum(1 for _ in nl.comb_cells())


class TestCones:
    def test_cone_stops_at_registers(self):
        nl = pipeline_example()
        cone = combinational_cone(nl, nl.net("g"))
        names = {nl.net_name(n) for n in cone}
        assert names == {"g", "q1", "c"}

    def test_support_of_stable_net_is_itself(self):
        nl = pipeline_example()
        q1 = nl.net("q1")
        assert stable_support(nl, q1) == frozenset((q1,))

    def test_support_of_comb_net(self):
        nl = pipeline_example()
        support = stable_support(nl, nl.net("x"))
        names = {nl.net_name(n) for n in support}
        assert names == {"q2", "a"}

    @given(random_circuits())
    def test_all_supports_match_single_queries(self, circuit):
        nl, _, nets = circuit
        supports = all_stable_supports(nl)
        for net in nets:
            assert supports[net] == stable_support(nl, net)


class TestTransitiveSupport:
    def test_ages_through_registers(self):
        nl = pipeline_example()
        support = transitive_input_support(nl, nl.net("x"), max_cycles=4)
        named = {(nl.net_name(n), age) for n, age in support}
        # x = q2 xor a: a directly (age 0); through q2 <- g <- {q1, c}:
        # c at age 1, a through q1's NOT at age 2.
        assert named == {("a", 0), ("c", 1), ("a", 2)}

    def test_depth_cap(self):
        nl = pipeline_example()
        support = transitive_input_support(nl, nl.net("x"), max_cycles=1)
        named = {(nl.net_name(n), age) for n, age in support}
        assert ("a", 2) not in named
        assert ("c", 1) in named


class TestDepth:
    def test_combinational_depth(self):
        nl = pipeline_example()
        # longest comb path: q1/c -> g is depth 1; a -> inv depth 1;
        # q2/a -> x depth 1... plus output buffer over x.
        assert combinational_depth(nl) == 2

    def test_depth_of_chain(self):
        b = CircuitBuilder("chain")
        a = b.input("a")
        net = a
        for _ in range(5):
            net = b.not_(net)
        b.output(net, "y")
        assert combinational_depth(b.build()) >= 5
