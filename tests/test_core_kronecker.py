"""Tests for the masked Kronecker delta function."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.kronecker import (
    KRONECKER_LATENCY,
    build_kronecker_delta,
    kronecker_reference,
)
from repro.core.optimizations import (
    FIRST_ORDER_SCHEMES,
    RandomnessScheme,
    SecondOrderScheme,
)
from repro.errors import MaskingError
from repro.netlist.simulate import ScalarSimulator


def run_kronecker(design, x, rng, warmup=8):
    """Drive a constant sharing of x until the pipeline settles; return z."""
    n_shares = design.order + 1
    sim = ScalarSimulator(design.netlist)
    values = None
    for _ in range(warmup):
        shares = [rng.randrange(256) for _ in range(n_shares - 1)]
        acc = x
        for s in shares:
            acc ^= s
        shares.append(acc)
        assignment = {}
        for s, bus in enumerate(design.dut.share_buses):
            for i, net in enumerate(bus):
                assignment[net] = (shares[s] >> i) & 1
        for net in design.dut.mask_bits:
            assignment[net] = rng.randrange(2)
        values = sim.step(assignment)
    result = 0
    for net in design.z_shares:
        result ^= values[net]
    return result


class TestReference:
    def test_reference_function(self):
        assert kronecker_reference(0) == 1
        assert kronecker_reference(1) == 0
        assert kronecker_reference(0xFF) == 0


class TestFirstOrderFunctional:
    @pytest.mark.parametrize("scheme", FIRST_ORDER_SCHEMES)
    def test_all_schemes_compute_delta(self, scheme):
        design = build_kronecker_delta(scheme)
        rng = random.Random(hash(scheme.value) & 0xFFFF)
        for x in (0, 1, 2, 0x80, 0xAA, 0xFF):
            assert run_kronecker(design, x, rng) == kronecker_reference(x)

    @settings(max_examples=24, deadline=None)
    @given(st.integers(0, 255), st.integers(0, 2**32 - 1))
    def test_full_scheme_exhaustive_style(self, x, seed):
        design = build_kronecker_delta(RandomnessScheme.FULL)
        assert run_kronecker(
            design, x, random.Random(seed)
        ) == kronecker_reference(x)


class TestStructure:
    def test_latency_constant(self, kronecker_full):
        assert kronecker_full.dut.latency == KRONECKER_LATENCY == 3

    def test_v_nodes_present_first_order(self, kronecker_full):
        assert set(kronecker_full.v_nodes) == {"v1", "v2", "v3", "v4"}

    def test_intermediates_shape(self, kronecker_full):
        inter = kronecker_full.intermediates
        assert set(inter) == {"y0", "y1", "y2", "y3", "w0", "w1"}
        assert all(len(shares) == 2 for shares in inter.values())

    def test_register_count_first_order(self, kronecker_full):
        # 7 DOM gates x 4 registers each.
        assert sum(1 for _ in kronecker_full.netlist.dff_cells()) == 28

    def test_fresh_mask_counts(self):
        assert build_kronecker_delta(RandomnessScheme.FULL).fresh_mask_bits == 7
        assert (
            build_kronecker_delta(RandomnessScheme.DEMEYER_EQ6).fresh_mask_bits
            == 3
        )
        assert (
            build_kronecker_delta(RandomnessScheme.PROPOSED_EQ9).fresh_mask_bits
            == 4
        )

    def test_metadata(self, kronecker_eq6):
        assert kronecker_eq6.dut.metadata["design"] == "kronecker_delta"
        assert "eq6" in kronecker_eq6.dut.metadata["scheme"]


class TestSecondOrder:
    @pytest.mark.parametrize("scheme", list(SecondOrderScheme))
    def test_functional(self, scheme):
        design = build_kronecker_delta(scheme, order=2)
        rng = random.Random(11)
        for x in (0, 3, 0x7F, 0xFF):
            assert run_kronecker(design, x, rng, warmup=10) == (
                kronecker_reference(x)
            )

    def test_three_shares(self, kronecker_second_order):
        assert kronecker_second_order.dut.n_shares == 3
        assert len(kronecker_second_order.z_shares) == 3

    def test_register_count(self, kronecker_second_order):
        # 7 DOM gates x (3 inner + 6 cross) registers.
        assert (
            sum(1 for _ in kronecker_second_order.netlist.dff_cells()) == 63
        )

    def test_no_v_nodes_recorded(self, kronecker_second_order):
        assert kronecker_second_order.v_nodes == {}


class TestValidation:
    def test_order_scheme_mismatch(self):
        with pytest.raises(MaskingError):
            build_kronecker_delta(SecondOrderScheme.FULL_21, order=1)
        with pytest.raises(MaskingError):
            build_kronecker_delta(RandomnessScheme.FULL, order=2)

    def test_unsupported_order(self):
        with pytest.raises(MaskingError):
            build_kronecker_delta(order=3)

    def test_default_schemes(self):
        assert build_kronecker_delta().scheme is RandomnessScheme.FULL
        assert (
            build_kronecker_delta(order=2).scheme is SecondOrderScheme.FULL_21
        )
