"""Tests for the ablation features: unregistered DOM and compact observer."""

import random

import pytest

from repro.core.kronecker import build_kronecker_delta, kronecker_reference
from repro.core.optimizations import RandomnessScheme
from repro.errors import SimulationError
from repro.leakage.evaluator import LeakageEvaluator
from repro.leakage.model import ProbingModel
from repro.netlist.simulate import ScalarSimulator

N_SIMS = 30_000


class TestUnregisteredKronecker:
    @pytest.fixture(scope="class")
    def design(self):
        return build_kronecker_delta(RandomnessScheme.FULL, registered=False)

    def test_fully_combinational(self, design):
        assert sum(1 for _ in design.netlist.dff_cells()) == 0
        assert design.dut.latency == 0

    def test_still_computes_delta(self, design):
        rng = random.Random(0)
        for x in (0, 1, 0x42, 0xFF):
            sim = ScalarSimulator(design.netlist)
            share0 = rng.randrange(256)
            assignment = {}
            for i in range(8):
                assignment[design.dut.share_buses[0][i]] = (share0 >> i) & 1
                assignment[design.dut.share_buses[1][i]] = (
                    (share0 ^ x) >> i
                ) & 1
            for net in design.dut.mask_bits:
                assignment[net] = rng.randrange(2)
            values = sim.step(assignment)
            z = values[design.z_shares[0]] ^ values[design.z_shares[1]]
            assert z == kronecker_reference(x)

    def test_leaks_under_glitches_despite_full_masks(self, design):
        """The Mangard et al. observation: no registers, no security --
        even with seven fresh mask bits."""
        evaluator = LeakageEvaluator(design.dut, ProbingModel.GLITCH, seed=1)
        report = evaluator.evaluate(fixed_secret=0, n_simulations=N_SIMS)
        assert not report.passed
        assert report.max_mlog10p > 100


class TestHammingObserver:
    def test_invalid_observation_rejected(self, kronecker_full):
        with pytest.raises(SimulationError):
            LeakageEvaluator(kronecker_full.dut, observation="power")

    def test_eq6_detected_by_hamming_observer(self, kronecker_eq6):
        evaluator = LeakageEvaluator(
            kronecker_eq6.dut,
            ProbingModel.GLITCH,
            seed=1,
            observation="hamming",
        )
        report = evaluator.evaluate(fixed_secret=0, n_simulations=N_SIMS)
        assert not report.passed
        assert any("g7" in r.probe_names for r in report.leaking_results)

    def test_full_passes_hamming_observer(self, kronecker_full):
        evaluator = LeakageEvaluator(
            kronecker_full.dut,
            ProbingModel.GLITCH,
            seed=1,
            observation="hamming",
        )
        report = evaluator.evaluate(fixed_secret=0, n_simulations=N_SIMS)
        assert report.passed

    def test_hamming_tables_are_small(self, kronecker_eq6):
        evaluator = LeakageEvaluator(
            kronecker_eq6.dut, seed=1, observation="hamming"
        )
        report = evaluator.evaluate(fixed_secret=0, n_simulations=5_000)
        assert all(r.dof <= 64 for r in report.results)


class TestMaskedDecryption:
    def test_decrypt_inverts_encrypt(self):
        from repro.core.aes_masked import MaskedAes128

        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        masked = MaskedAes128(key, random.Random(3))
        pt = bytes.fromhex("00112233445566778899aabbccddeeff")
        ct = masked.encrypt_block(pt)
        assert masked.decrypt_block(ct) == pt

    def test_decrypt_matches_reference(self):
        from repro.aes.cipher import aes128_decrypt_block
        from repro.core.aes_masked import MaskedAes128

        rng = random.Random(4)
        key = bytes(rng.randrange(256) for _ in range(16))
        ct = bytes(rng.randrange(256) for _ in range(16))
        masked = MaskedAes128(key, rng)
        assert masked.decrypt_block(ct) == aes128_decrypt_block(ct, key)

    def test_state_length_checked(self):
        from repro.core.aes_masked import MaskedAes128
        from repro.errors import MaskingError

        masked = MaskedAes128(bytes(16), random.Random(5))
        with pytest.raises(MaskingError):
            masked.decrypt_shared([])
