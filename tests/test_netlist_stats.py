"""Tests for netlist statistics and the cell library."""

from repro.netlist.builder import CircuitBuilder
from repro.netlist.cells import CellType
from repro.netlist.library import (
    CELL_AREAS,
    CELL_NAMES,
    NAND2_AREA,
    cell_area,
    cell_gate_equivalents,
)
from repro.netlist.stats import netlist_stats


def example():
    b = CircuitBuilder("stats_demo")
    x = b.input_bus("x", 2)
    g = b.and_(x[0], x[1])
    q = b.reg(g, "q")
    b.output(b.not_(q), "y")
    return b.build()


class TestStats:
    def test_counts(self):
        stats = netlist_stats(example())
        assert stats.n_cells == 4  # AND, DFF, NOT, output BUF
        assert stats.n_registers == 1
        assert stats.n_combinational == 3
        assert stats.cell_counts[CellType.AND] == 1
        assert stats.n_inputs == 2
        assert stats.n_outputs == 1

    def test_area_sums_cells(self):
        stats = netlist_stats(example())
        expected = (
            CELL_AREAS[CellType.AND]
            + CELL_AREAS[CellType.DFF]
            + CELL_AREAS[CellType.NOT]
            + CELL_AREAS[CellType.BUF]
        )
        assert abs(stats.area_um2 - expected) < 1e-9

    def test_gate_equivalents(self):
        stats = netlist_stats(example())
        assert abs(stats.area_ge - stats.area_um2 / NAND2_AREA) < 1e-9

    def test_format_table_mentions_cells(self):
        text = netlist_stats(example()).format_table()
        assert "stats_demo" in text
        assert "AND2_X1" in text
        assert "DFF_X1" in text
        assert "GE" in text

    def test_depth_reported(self):
        stats = netlist_stats(example())
        assert stats.comb_depth >= 1


class TestLibrary:
    def test_every_cell_has_name_and_area(self):
        for kind in CellType:
            assert kind in CELL_NAMES
            assert cell_area(kind) >= 0.0

    def test_nand_is_one_gate_equivalent(self):
        assert abs(cell_gate_equivalents(CellType.NAND) - 1.0) < 1e-9

    def test_dff_larger_than_gates(self):
        assert cell_area(CellType.DFF) > cell_area(CellType.XOR)

    def test_constants_are_free(self):
        assert cell_area(CellType.CONST0) == 0.0
        assert cell_area(CellType.CONST1) == 0.0
