"""Tests for the compiled gate program and its per-process cache."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.netlist.builder import CircuitBuilder
from repro.netlist.cells import CellType
from repro.netlist.compile import (
    CompiledSimulator,
    clear_program_cache,
    compile_netlist,
    netlist_content_hash,
    program_cache_info,
)
from repro.netlist.simulate import pack_lanes


def _adder_bit():
    """One-bit full adder with a registered carry."""
    b = CircuitBuilder("adder")
    x = b.input("x")
    y = b.input("y")
    carry_in = b.input("cin")
    s = b.xor(b.xor(x, y), carry_in)
    carry = b.or_(b.and_(x, y), b.and_(carry_in, b.xor(x, y)))
    q = b.reg(carry, "carry_q")
    b.output(s, "sum")
    b.output(q, "carry_out")
    return b.build()


class TestContentHash:
    def test_names_do_not_affect_hash(self):
        def build(name, net_prefix):
            b = CircuitBuilder(name)
            x = b.input(f"{net_prefix}x")
            y = b.input(f"{net_prefix}y")
            b.output(b.and_(x, y), f"{net_prefix}out")
            return b.build()

        assert netlist_content_hash(build("a", "p_")) == netlist_content_hash(
            build("b", "q_")
        )

    def test_structure_affects_hash(self):
        def build(kind):
            b = CircuitBuilder("t")
            x = b.input("x")
            y = b.input("y")
            gate = b.and_(x, y) if kind == "and" else b.or_(x, y)
            b.output(gate, "out")
            return b.build()

        assert netlist_content_hash(build("and")) != netlist_content_hash(
            build("or")
        )

    def test_connectivity_affects_hash(self):
        def build(swapped):
            b = CircuitBuilder("t")
            x = b.input("x")
            y = b.input("y")
            z = b.input("z")
            first = (y, x) if swapped else (x, y)
            b.output(b.mux(z, *first), "out")
            return b.build()

        assert netlist_content_hash(build(False)) != netlist_content_hash(
            build(True)
        )


class TestGateProgram:
    def test_program_covers_every_combinational_cell(self):
        nl = _adder_bit()
        program = compile_netlist(nl, use_cache=False)
        n_dffs = sum(
            1 for c in nl.cells if c.cell_type is CellType.DFF
        )
        assert program.n_comb_cells == len(nl.cells) - n_dffs
        assert program.dff_d.size == n_dffs
        assert program.dff_q.size == n_dffs
        assert program.n_levels >= 1
        assert program.n_dispatches <= program.n_comb_cells

    def test_ops_are_level_ordered(self):
        nl = _adder_bit()
        program = compile_netlist(nl, use_cache=False)
        # Every op input must be a primary input, register output,
        # constant, or the output of an earlier op: executable in order.
        ready = set(program.input_nets)
        ready.update(int(n) for n in program.dff_q)
        ready.update(int(n) for n in program.const0)
        ready.update(int(n) for n in program.const1)
        for op in program.ops:
            for arr in (op.in0, op.in1, op.in2):
                for net in arr:
                    assert int(net) in ready
            ready.update(int(n) for n in op.out)

    def test_constants_are_separated(self):
        b = CircuitBuilder("t")
        x = b.input("x")
        zero = b.constant(0)
        one = b.constant(1)
        b.output(b.and_(x, one), "a")
        b.output(b.or_(x, zero), "b")
        program = compile_netlist(b.build(), use_cache=False)
        assert program.const0.size == 1
        assert program.const1.size == 1
        assert all(
            op.cell_type not in (CellType.CONST0, CellType.CONST1)
            for op in program.ops
        )


class TestProgramCache:
    def test_cache_returns_same_object(self):
        clear_program_cache()
        nl = _adder_bit()
        first = compile_netlist(nl)
        second = compile_netlist(nl)
        assert first is second
        info = program_cache_info()
        assert info.entries == 1
        assert info.capacity >= 1
        assert info.hits == 1
        assert info.misses == 1

    def test_structurally_equal_netlists_share_a_program(self):
        clear_program_cache()
        assert compile_netlist(_adder_bit()) is compile_netlist(_adder_bit())

    def test_use_cache_false_bypasses(self):
        clear_program_cache()
        nl = _adder_bit()
        cached = compile_netlist(nl)
        fresh = compile_netlist(nl, use_cache=False)
        assert fresh is not cached
        assert fresh.content_hash == cached.content_hash

    def test_cache_evicts_oldest(self):
        from repro.netlist import compile as compile_mod

        clear_program_cache()
        old_size = compile_mod._PROGRAM_CACHE_SIZE
        compile_mod._PROGRAM_CACHE_SIZE = 2
        try:
            def chain(n):
                b = CircuitBuilder("t")
                net = b.input("x")
                for _ in range(n):
                    net = b.not_(net)
                b.output(net, "out")
                return b.build()

            programs = [compile_netlist(chain(n)) for n in (1, 2, 3)]
            info = program_cache_info()
            assert info.entries == 2
            assert info.evictions == 1
            # The first program was evicted: recompilation yields a new one.
            assert compile_netlist(chain(1)) is not programs[0]
        finally:
            compile_mod._PROGRAM_CACHE_SIZE = old_size
            clear_program_cache()


class TestCompiledSimulator:
    def test_lane_count_validation(self):
        with pytest.raises(SimulationError):
            CompiledSimulator(_adder_bit(), 0)
        with pytest.raises(SimulationError):
            CompiledSimulator(_adder_bit(), -3)

    def test_missing_input_detected(self):
        nl = _adder_bit()
        sim = CompiledSimulator(nl, 64)
        with pytest.raises(SimulationError, match="missing primary input"):
            sim.run(lambda cycle: {}, 1)

    def test_stimulus_shape_checked(self):
        nl = _adder_bit()
        sim = CompiledSimulator(nl, 128)
        stim = lambda cycle: {
            net: np.zeros(1, dtype=np.uint64) for net in nl.inputs
        }
        with pytest.raises(SimulationError, match="shape"):
            sim.run(stim, 1)

    def test_record_cycles_filter(self):
        nl = _adder_bit()
        sim = CompiledSimulator(nl, 64)
        stim = lambda cycle: {
            net: np.zeros(1, dtype=np.uint64) for net in nl.inputs
        }
        trace = sim.run(stim, 3, record_cycles={1})
        assert trace.values[0] == {}
        assert trace.values[2] == {}
        assert trace.values[1] != {}

    def test_registered_carry_accumulates(self):
        nl = _adder_bit()
        sim = CompiledSimulator(nl, 1)
        names = {nl.net_name(n): n for n in nl.inputs}
        ones = pack_lanes(np.array([1], dtype=np.uint8))
        stim = lambda cycle: {
            names["x"]: ones.copy(),
            names["y"]: ones.copy(),
            names["cin"]: ones.copy(),
        }
        trace = sim.run(stim, 2)
        carry_q = next(
            c.output for c in nl.cells if c.cell_type is CellType.DFF
        )
        # Cycle 0: reset value; cycle 1: carry of 1+1+1.
        assert trace.bits(0, carry_q)[0] == 0
        assert trace.bits(1, carry_q)[0] == 1
