#!/usr/bin/env python
"""Distributed-fabric smoke test (CI, stdlib only): kill a worker, keep the bytes.

Boots a fleet coordinator (``repro.cli serve --fleet``) with **zero** local
workers plus external ``repro.cli worker`` processes speaking the
``/v1/fleet/`` lease protocol over HTTP, then proves the fabric's central
claim end to end:

* **campaign leg** -- the E3 configuration (masked S-box, Eq. (6)
  randomness) is submitted to the coordinator while a single worker
  executes it.  As soon as that worker holds an active lease it is
  SIGKILLed -- no cleanup handlers, its leases silently expire -- and a
  second worker (started only then) finishes the campaign.  The merged
  report must be **byte-identical** to an in-process serial run, and at
  least one lease expiry must have been observed (the kill really landed
  mid-flight);
* **exact leg** -- a ``mode="exact"`` certification job is distributed
  across two workers and its report compared byte-for-byte against the
  in-process :func:`repro.leakage.certify.run_exact_analysis` sweep.

Run from the repository root::

    python scripts/distributed_smoke.py [--simulations N] [--lease-seconds S]

Exits 0 on success, 1 on failure.
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEADLINE_SECONDS = 420


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [os.path.join(REPO_ROOT, "src"), env.get("PYTHONPATH")])
    )
    return env


def _get_json(url, timeout=30):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return json.loads(resp.read())


def _post_json(url, body, timeout=60):
    request = urllib.request.Request(
        url,
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as resp:
        return json.loads(resp.read())


def start_coordinator(state_dir, lease_seconds, env):
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--state-dir", state_dir,
            "--port", "0",
            "--fleet",
            "--local-workers", "0",
            "--lease-seconds", str(lease_seconds),
            "--runner-threads", "1",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 30
    address = None
    while address is None:
        if proc.poll() is not None or time.monotonic() > deadline:
            raise SystemExit("FAIL: coordinator did not come up")
        line = proc.stdout.readline()
        if "listening on" in line:
            address = line.rsplit(" ", 1)[-1].strip()
    return proc, address


def start_worker(address, name, env):
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "worker",
            "--coordinator", address,
            "--worker-id", name,
            "--poll-interval", "0.1",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def wait_for_job(address, job_id, deadline):
    record = {"state": "queued"}
    while record["state"] in ("queued", "running"):
        if time.monotonic() > deadline:
            raise SystemExit(f"FAIL: job {job_id} did not finish in time")
        record = _get_json(f"{address}/v1/jobs/{job_id}?wait=5")
    return record


def fetch_report(address, job_id):
    with urllib.request.urlopen(
        f"{address}/v1/jobs/{job_id}/report", timeout=60
    ) as resp:
        return resp.read()


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--simulations", type=int, default=150_000)
    parser.add_argument("--chunk-size", type=int, default=8_192)
    parser.add_argument("--lease-seconds", type=float, default=3.0)
    parser.add_argument("--max-enum-bits", type=int, default=23)
    parser.add_argument("--shard-lane-bits", type=int, default=12)
    options = parser.parse_args()
    env = _env()
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

    from repro.core.kronecker import build_kronecker_delta
    from repro.core.optimizations import RandomnessScheme
    from repro.leakage.campaign import EvaluationCampaign
    from repro.leakage.certify import run_exact_analysis
    from repro.service import JobSpec, evaluator_for

    campaign_spec = {
        "design": "sbox",
        "scheme": "eq6",
        "n_simulations": options.simulations,
        "chunk_size": options.chunk_size,
        "seed": 7,
    }
    exact_spec = {
        "design": "kronecker",
        "scheme": "eq6",
        "mode": "exact",
        "max_enum_bits": options.max_enum_bits,
        "shard_lane_bits": options.shard_lane_bits,
        "seed": 7,
    }

    print("[1/6] computing in-process serial references")
    spec = JobSpec.from_dict(dict(campaign_spec))
    golden_campaign = (
        EvaluationCampaign(
            evaluator_for(spec), spec.campaign_config(default_chunking=True)
        )
        .run()
        .to_json(top=None)
        .encode("utf-8")
    )
    design = build_kronecker_delta(RandomnessScheme.DEMEYER_EQ6)
    golden_exact = run_exact_analysis(
        design.dut,
        max_enum_bits=options.max_enum_bits,
        shard_lane_bits=options.shard_lane_bits,
    ).to_json(top=None).encode("utf-8")

    state_dir = tempfile.mkdtemp(prefix="distributed_smoke_")
    coordinator, address = start_coordinator(
        state_dir, options.lease_seconds, env
    )
    workers = []
    deadline = time.monotonic() + DEADLINE_SECONDS
    try:
        print(f"[2/6] coordinator at {address}; starting worker alpha")
        workers.append(start_worker(address, "alpha", env))
        record = _post_json(f"{address}/v1/jobs", campaign_spec)
        job_id = record["job_id"]

        # Kill alpha only once it provably holds work: at least one item
        # completed (it is executing) and a lease is active right now.
        # alpha is the only worker, so every active lease is alpha's and
        # the SIGKILL must strand it past expiry.
        print("[3/6] waiting for worker alpha to hold an active lease")
        while True:
            if time.monotonic() > deadline:
                raise SystemExit("FAIL: campaign never put alpha on lease")
            stats = _get_json(f"{address}/v1/fleet")
            if (
                stats["counters"]["items_completed"] >= 1
                and stats["active_leases"] >= 1
            ):
                break
            time.sleep(0.05)
        workers[0].send_signal(signal.SIGKILL)
        workers[0].wait()
        print("[4/6] worker alpha SIGKILLed mid-lease; starting worker beta")
        workers.append(start_worker(address, "beta", env))

        record = wait_for_job(address, job_id, deadline)
        if record["state"] != "done":
            raise SystemExit(
                f"FAIL: campaign job ended {record['state']!r}: "
                f"{record.get('error')}"
            )
        report = fetch_report(address, job_id)
        stats = _get_json(f"{address}/v1/fleet")
        print(f"  fleet counters: {stats['counters']}")
        if report != golden_campaign:
            raise SystemExit(
                "FAIL: distributed campaign report is not byte-identical "
                "to the serial reference"
            )
        if stats["counters"]["leases_expired"] < 1:
            raise SystemExit(
                "FAIL: no lease expiry observed -- the kill did not land "
                "mid-flight"
            )
        print("  campaign report byte-identical to serial; "
              f"{stats['counters']['leases_expired']} lease(s) expired "
              "and were reissued")

        print("[5/6] exact certification across two workers")
        workers.append(start_worker(address, "gamma", env))
        record = _post_json(f"{address}/v1/jobs", exact_spec)
        record = wait_for_job(address, record["job_id"], deadline)
        if record["state"] != "done":
            raise SystemExit(
                f"FAIL: exact job ended {record['state']!r}: "
                f"{record.get('error')}"
            )
        report = fetch_report(address, record["job_id"])
        if report != golden_exact:
            raise SystemExit(
                "FAIL: distributed exact report is not byte-identical to "
                "the in-process sweep"
            )
        stats = _get_json(f"{address}/v1/fleet")
        print(f"  exact report byte-identical; fleet counters: "
              f"{stats['counters']}")
        print("[6/6] PASS: coordinator/worker execution is byte-faithful "
              "under worker death")
        return 0
    finally:
        for worker in workers:
            if worker.poll() is None:
                worker.terminate()
        coordinator.terminate()
        for worker in workers:
            worker.wait()
        coordinator.wait()


if __name__ == "__main__":
    raise SystemExit(main())
