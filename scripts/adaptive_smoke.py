#!/usr/bin/env python
"""Adaptive-scheduler smoke test (CI, stdlib + package only).

Runs the known-leaky Eq. (6) Kronecker delta (the paper's E3/E4 design)
once with a uniform budget and once under the adaptive per-probe
scheduler, then checks the properties the scheduler must never trade
away for speed:

* same FAIL verdict as the uniform run,
* the Eq. (6) leak is decided-leaky within two chunk boundaries,
* identical leaking-probe set, with the worst probe localized to the
  same ``g7.*`` Kronecker gadget as the uniform run,
* the adaptive run spends strictly fewer probe-samples.

Run from the repository root::

    python scripts/adaptive_smoke.py [--slice | --no-slice]

``--slice`` (the default) evaluates with cone-sliced simulation,
``--no-slice`` with full-netlist simulation; the two are bit-identical,
so CI runs both through the same assertions.

Exits 0 on success, 1 on failure.  Takes a few seconds.
"""

import argparse
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.leakage.adaptive import DECIDED_LEAKY, AdaptiveConfig
from repro.leakage.campaign import CampaignConfig, EvaluationCampaign
from repro.leakage.evaluator import LeakageEvaluator
from repro.leakage.model import ProbingModel
from repro.service.runner import build_design

N_SIMULATIONS = 40_000
CHUNK_SIZE = 8_192
SEED = 7


def _campaign(adaptive, slice_cones):
    dut = build_design("kronecker", "eq6").dut
    evaluator = LeakageEvaluator(
        dut, ProbingModel.GLITCH, seed=SEED, slice_cones=slice_cones
    )
    config = CampaignConfig(
        n_simulations=N_SIMULATIONS,
        chunk_size=CHUNK_SIZE,
        adaptive=AdaptiveConfig() if adaptive else None,
    )
    return EvaluationCampaign(evaluator, config).run()


def check(condition, label):
    print(f"{'ok  ' if condition else 'FAIL'} {label}")
    return bool(condition)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--slice", action=argparse.BooleanOptionalAction, default=True,
        help="cone-sliced simulation (default; --no-slice runs the "
             "full netlist)",
    )
    args = parser.parse_args()
    print(f"simulation mode: {'sliced' if args.slice else 'full'}")
    uniform = _campaign(adaptive=False, slice_cones=args.slice)
    report = _campaign(adaptive=True, slice_cones=args.slice)
    adaptive = report.adaptive

    leaky = {
        table_id: probe
        for table_id, probe in adaptive["probes"].items()
        if probe["state"] == DECIDED_LEAKY
    }
    uniform_set = {r.probe_names for r in uniform.leaking_results}
    adaptive_set = {r.probe_names for r in report.leaking_results}

    ok = True
    ok &= check(not uniform.passed, "uniform run FAILs (Eq. (6) leaks)")
    ok &= check(not report.passed, "adaptive run reaches the same verdict")
    ok &= check(leaky, "adaptive run decided at least one probe leaky")
    ok &= check(
        all(p["decided_at_chunk"] <= 2 for p in leaky.values()),
        "every leak decided within two chunks",
    )
    ok &= check(
        adaptive_set == uniform_set,
        f"identical leaking-probe sets ({len(uniform_set)} probes)",
    )
    # The ordering *within* the leaky set can shift with the sample
    # budget; what must agree is the root-cause localization: both runs
    # point at the g7 Kronecker gadget.
    worst_u = uniform.worst.probe_names
    worst_a = report.worst.probe_names
    gadget = lambda name: name.split(".", 1)[0]  # noqa: E731
    ok &= check(
        gadget(worst_a) == gadget(worst_u) == "g7",
        f"worst probe localized to the same gadget "
        f"(uniform {worst_u}, adaptive {worst_a})",
    )
    ok &= check(
        adaptive["probe_samples_spent"] < adaptive["probe_samples_uniform"],
        f"fewer probe-samples spent "
        f"({adaptive['probe_sample_savings']}x savings)",
    )
    ok &= check(adaptive["undecided"] == 0, "no probe left undecided")

    print(
        f"\nadaptive: {report.n_simulations} sims, "
        f"{adaptive['decided_leaky']} leaky / "
        f"{adaptive['decided_null']} null over "
        f"{adaptive['chunks_observed']} chunks"
    )
    if not ok:
        print("adaptive smoke test FAILED")
        return 1
    print("adaptive smoke test passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
