#!/usr/bin/env python
"""Kill-and-resume smoke test for evaluation campaigns (CI, stdlib only).

Launches a chunked campaign of the known-leaky Eq. (6) Kronecker delta with
checkpointing enabled, SIGKILLs it as soon as the first checkpoint lands on
disk, then resumes through the CLI and checks that the resumed run

* actually starts from the checkpoint (no full re-simulation), and
* reaches the leakage verdict (exit code 1).

Run from the repository root::

    python scripts/kill_resume_smoke.py [--workers N] [--slice | --no-slice]
                                        [--torn-checkpoint]

With ``--torn-checkpoint`` the exercise gets harder: the victim is
SIGKILLed only after the checkpoint has rotated at least once (so a
``.prev`` generation exists), the current checkpoint is then overwritten
with garbage (a write torn mid-flight by the kill), and the resumed run
must quarantine the corrupt file, fall back one generation, and still
produce a report byte-identical to an uninterrupted reference run.

With ``--workers N`` the resumed run goes through the multiprocessing
executor, exercising checkpoint interoperability between the serial and
parallel paths (a checkpoint written serially must resume under any worker
count -- results are bit-identical by construction).  ``--slice`` (the
default) runs both the victim and the resumed campaign with cone-sliced
simulation; ``--no-slice`` uses full-netlist simulation.  The slice flag
joins the checkpoint fingerprint, so both legs must agree.

Exits 0 on success, 1 on failure.  The whole exercise takes well under 30
seconds.
"""

import argparse
import os
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
N_SIMULATIONS = 200_000
CHUNK_SIZE = 8_192
DEADLINE_SECONDS = 25


def campaign_args(checkpoint, resume=False, workers=1, slice_cones=True,
                  as_json=False):
    args = [
        sys.executable,
        "-m",
        "repro.cli",
        "campaign",
        "--scheme", "eq6",
        "--simulations", str(N_SIMULATIONS),
        "--chunk-size", str(CHUNK_SIZE),
        "--seed", "7",
        "--workers", str(workers),
        "--slice" if slice_cones else "--no-slice",
    ]
    if checkpoint is not None:
        args += ["--checkpoint", checkpoint]
    if resume:
        args.append("--resume")
    if as_json:
        args.append("--json")
    return args


def run_torn_checkpoint_leg(env, options):
    """SIGKILL during checkpoint writes, then corrupt the current generation.

    Proves generation rotation: the victim is killed only after the
    previous-generation checkpoint (``.prev``) exists, the *current*
    checkpoint is then overwritten with garbage (simulating a write torn
    mid-flight by the kill), and the resumed run must quarantine the
    corrupt file, fall back one generation, and still produce a report
    byte-identical to an uninterrupted reference run.
    """
    workdir = tempfile.mkdtemp(prefix="kill_resume_torn_")
    checkpoint = os.path.join(workdir, "campaign.npz")

    print("[1/4] computing reference report (no checkpoint, no kill)")
    golden = subprocess.run(
        campaign_args(None, workers=options.workers,
                      slice_cones=options.slice, as_json=True),
        env=env,
        capture_output=True,
        text=True,
        timeout=DEADLINE_SECONDS * 10,
    )
    if golden.returncode != 1:
        print(f"FAIL: reference campaign exited {golden.returncode}, "
              "expected 1 (leakage detected)")
        return 1

    print(f"[2/4] starting victim campaign (checkpoint: {checkpoint})")
    victim = subprocess.Popen(
        campaign_args(checkpoint, slice_cones=options.slice),
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + DEADLINE_SECONDS
    try:
        # Wait for the second generation: once ``.prev`` exists there is a
        # known-good checkpoint to fall back to when we tear the current one.
        while not os.path.exists(checkpoint + ".prev"):
            if victim.poll() is not None:
                print("FAIL: campaign finished before it could be killed; "
                      "raise N_SIMULATIONS")
                return 1
            if time.monotonic() > deadline:
                print("FAIL: no rotated checkpoint appeared in time")
                return 1
            time.sleep(0.01)
        victim.kill()  # SIGKILL: no cleanup handlers run
    finally:
        victim.wait()
    with open(checkpoint, "wb") as handle:
        handle.write(b"RPCKPT01 torn mid-write by a crash")
    print("[3/4] victim SIGKILLed; current checkpoint torn to garbage")

    result = subprocess.run(
        campaign_args(checkpoint, resume=True, workers=options.workers,
                      slice_cones=options.slice, as_json=True),
        env=env,
        capture_output=True,
        text=True,
        timeout=DEADLINE_SECONDS * 10,
    )
    sys.stderr.write(result.stderr)
    if result.returncode != 1:
        print(f"FAIL: resumed campaign exited {result.returncode}, "
              "expected 1 (leakage detected)")
        return 1
    if not os.path.exists(checkpoint + ".corrupt"):
        print("FAIL: torn checkpoint was not quarantined to .corrupt")
        return 1
    if result.stdout != golden.stdout:
        print("FAIL: resumed report is not byte-identical to the "
              "uninterrupted reference report")
        return 1
    print("[4/4] torn checkpoint quarantined; resume fell back one "
          "generation and produced a byte-identical report")
    return 0


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the resumed run")
    parser.add_argument(
        "--slice", action=argparse.BooleanOptionalAction, default=True,
        help="cone-sliced simulation for both legs (default; --no-slice "
             "runs the full netlist)",
    )
    parser.add_argument(
        "--torn-checkpoint", action="store_true",
        help="instead of the plain kill/resume leg, SIGKILL during "
             "checkpointing, corrupt the current checkpoint, and require "
             "a bit-identical recovery from the previous generation",
    )
    options = parser.parse_args()
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [os.path.join(REPO_ROOT, "src"), env.get("PYTHONPATH")])
    )
    if options.torn_checkpoint:
        return run_torn_checkpoint_leg(env, options)
    checkpoint = os.path.join(
        tempfile.mkdtemp(prefix="kill_resume_"), "campaign.npz"
    )

    mode = "sliced" if options.slice else "full"
    print(f"[1/3] starting campaign (checkpoint: {checkpoint}, {mode})")
    victim = subprocess.Popen(
        campaign_args(checkpoint, slice_cones=options.slice),
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + DEADLINE_SECONDS
    try:
        while not os.path.exists(checkpoint):
            if victim.poll() is not None:
                print("FAIL: campaign finished before it could be killed; "
                      "raise N_SIMULATIONS")
                return 1
            if time.monotonic() > deadline:
                print("FAIL: no checkpoint appeared within the deadline")
                return 1
            time.sleep(0.01)
        victim.kill()  # SIGKILL: no cleanup handlers run
    finally:
        victim.wait()
    print("[2/3] campaign SIGKILLed after its first checkpoint")

    result = subprocess.run(
        campaign_args(checkpoint, resume=True, workers=options.workers,
                      slice_cones=options.slice),
        env=env,
        capture_output=True,
        text=True,
        timeout=DEADLINE_SECONDS * 10,
    )
    sys.stdout.write(result.stdout)
    sys.stderr.write(result.stderr)
    if result.returncode != 1:
        print(f"FAIL: resumed campaign exited {result.returncode}, "
              "expected 1 (leakage detected)")
        return 1
    if "resumed from block 0," in result.stdout:
        print("FAIL: resume started from block 0 (checkpoint ignored)")
        return 1
    if "truncated" in result.stdout:
        print("FAIL: resumed campaign did not run to completion")
        return 1
    print("[3/3] resumed campaign completed from checkpoint with the "
          "expected leakage verdict")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
